package core

import "ltc/internal/model"

// taskState is the shared bookkeeping of every LTC algorithm: the per-task
// accumulated Acc* credit S[t] (line "S stores accumulated value for each
// task" of Algorithms 1-3) plus a count of tasks still below δ so AllDone
// is O(1).
//
// The state supports the online task lifecycle: open extends S with a task
// posted mid-stream (its δ-threshold race starts at zero from that moment),
// close retires a task so it stops counting toward remaining and stops
// being assignable. With no opens/closes the behaviour is exactly the
// fixed-task-set original.
type taskState struct {
	delta     float64
	s         []float64
	closed    []bool
	remaining int
}

func newTaskState(numTasks int, delta float64) *taskState {
	return &taskState{
		delta:     delta,
		s:         make([]float64, numTasks),
		closed:    make([]bool, numTasks),
		remaining: numTasks,
	}
}

// open extends the state with a newly posted task. Task IDs are dense:
// opening id n is only valid when the state currently tracks n tasks.
func (ts *taskState) open(t model.TaskID) {
	if int(t) != len(ts.s) {
		panic("core: task IDs must extend the dense ID space")
	}
	ts.s = append(ts.s, 0)
	ts.closed = append(ts.closed, false)
	ts.remaining++
}

// close retires task t: it no longer counts toward remaining and done
// reports true for it. It reports whether the task was still open (below δ
// and not already closed) — the caller's signal that an incomplete task was
// expired rather than finished.
func (ts *taskState) close(t model.TaskID) bool {
	if ts.closed[t] {
		return false
	}
	open := !model.Completed(ts.s[t], ts.delta)
	ts.closed[t] = true
	if open {
		ts.remaining--
	}
	return open
}

// done reports whether task t needs no further work: it reached the quality
// threshold or was retired.
func (ts *taskState) done(t model.TaskID) bool {
	return ts.closed[t] || model.Completed(ts.s[t], ts.delta)
}

// add credits task t and reports whether this credit completed it.
func (ts *taskState) add(t model.TaskID, credit float64) bool {
	was := ts.done(t)
	ts.s[t] += credit
	if !was && ts.done(t) {
		ts.remaining--
		return true
	}
	return false
}

// allDone reports whether every live task has reached δ.
func (ts *taskState) allDone() bool { return ts.remaining == 0 }

// need returns max(0, δ − S[t]): the credit task t still needs. Retired
// tasks need nothing.
func (ts *taskState) need(t model.TaskID) float64 {
	if ts.closed[t] {
		return 0
	}
	n := ts.delta - ts.s[t]
	if n < 0 {
		return 0
	}
	return n
}

// totalNeed returns Σ_t max(0, δ − S[t]) and the largest single-task need —
// the "average × K" numerator and "maximum" of AAM's switching rule.
// Retired tasks contribute nothing.
func (ts *taskState) totalNeed() (sum, maxNeed float64) {
	for t := range ts.s {
		n := ts.need(model.TaskID(t))
		if n > 0 {
			sum += n
			if n > maxNeed {
				maxNeed = n
			}
		}
	}
	return sum, maxNeed
}
