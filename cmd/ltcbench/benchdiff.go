package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"text/tabwriter"
)

// runBenchDiff compares two committed throughput artifacts (see
// throughputArtifact) cell by cell and fails — non-zero exit — when any
// cell present in both regressed by more than tolerance (fractional, e.g.
// 0.10): the CI benchmark-regression gate between BENCH_prN.json files.
// Cells only in one artifact are reported but never fail the diff, so new
// modes can be added without breaking the gate.
func runBenchDiff(basePath, candPath string, tolerance float64) error {
	base, err := readArtifact(basePath)
	if err != nil {
		return err
	}
	cand, err := readArtifact(candPath)
	if err != nil {
		return err
	}
	if base.Preset != cand.Preset || base.Algo != cand.Algo {
		return fmt.Errorf("artifacts not comparable: %s/%s vs %s/%s",
			base.Preset, base.Algo, cand.Preset, cand.Algo)
	}
	key := func(r throughputResult) string {
		return fmt.Sprintf("%s/shards=%d/batch=%d", r.Mode, r.Shards, r.BatchSize)
	}
	baseCells := make(map[string]throughputResult, len(base.Results))
	for _, r := range base.Results {
		baseCells[key(r)] = r
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "cell\tbaseline w/s\tcandidate w/s\tratio\tverdict\n")
	var failures int
	for _, c := range cand.Results {
		b, ok := baseCells[key(c)]
		if !ok {
			fmt.Fprintf(w, "%s\t-\t%.0f\t-\tnew\n", key(c), c.WorkersPerSec)
			continue
		}
		delete(baseCells, key(c))
		ratio := c.WorkersPerSec / b.WorkersPerSec
		verdict := "ok"
		if ratio < 1-tolerance {
			verdict = "REGRESSED"
			failures++
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.3f\t%s\n", key(c), b.WorkersPerSec, c.WorkersPerSec, ratio, verdict)
	}
	for k, b := range baseCells {
		fmt.Fprintf(w, "%s\t%.0f\t-\t-\tdropped\n", k, b.WorkersPerSec)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d cell(s) regressed more than %s%% vs %s",
			failures, strconv.FormatFloat(tolerance*100, 'g', -1, 64), basePath)
	}
	fmt.Printf("benchdiff: every shared cell within %s%% of %s\n",
		strconv.FormatFloat(tolerance*100, 'g', -1, 64), basePath)
	return nil
}

func readArtifact(path string) (*throughputArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art throughputArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}
