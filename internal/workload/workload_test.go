package workload

import (
	"errors"
	"math"
	"testing"

	"ltc/internal/model"
)

func smallConfig() Config {
	c := Default().Scale(0.02) // 60 tasks, 800 workers on a ~141×141 grid
	return c
}

func TestDefaultMatchesTableIV(t *testing.T) {
	c := Default()
	if c.NumTasks != 3000 || c.NumWorkers != 40000 || c.K != 6 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Epsilon != 0.1 || c.DMax != 30 || c.GridWidth != 1000 || c.GridHeight != 1000 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Accuracy.Kind != DistNormal || c.Accuracy.Mean != 0.86 || c.Accuracy.Spread != 0.05 {
		t.Fatalf("accuracy = %+v", c.Accuracy)
	}
}

func TestSweepsMatchTableIV(t *testing.T) {
	if got := TaskSweep(); len(got) != 5 || got[0] != 1000 || got[4] != 5000 {
		t.Fatalf("TaskSweep = %v", got)
	}
	if got := CapacitySweep(); len(got) != 5 || got[0] != 4 || got[4] != 8 {
		t.Fatalf("CapacitySweep = %v", got)
	}
	if got := AccuracyMeanSweep(); len(got) != 5 || got[0] != 0.82 || got[4] != 0.90 {
		t.Fatalf("AccuracyMeanSweep = %v", got)
	}
	if got := EpsilonSweep(); len(got) != 5 || got[0] != 0.06 || got[4] != 0.22 {
		t.Fatalf("EpsilonSweep = %v", got)
	}
	if got := ScalabilityTaskSweep(); len(got) != 6 || got[5] != 100000 {
		t.Fatalf("ScalabilityTaskSweep = %v", got)
	}
	if s := Scalability(10000); s.NumTasks != 10000 || s.NumWorkers != 400000 {
		t.Fatalf("Scalability = %+v", s)
	}
}

func TestGenerateStructure(t *testing.T) {
	c := smallConfig()
	in, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) != c.NumTasks || len(in.Workers) != c.NumWorkers {
		t.Fatalf("counts = %d tasks, %d workers", len(in.Tasks), len(in.Workers))
	}
	for _, task := range in.Tasks {
		if task.Loc.X < 0 || task.Loc.X > c.GridWidth || task.Loc.Y < 0 || task.Loc.Y > c.GridHeight {
			t.Fatalf("task %d outside grid: %v", task.ID, task.Loc)
		}
	}
	for _, w := range in.Workers {
		if w.Acc < model.SpamThreshold || w.Acc > 1 {
			t.Fatalf("worker %d accuracy %v outside [0.66, 1]", w.Index, w.Acc)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := smallConfig()
	a, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Workers {
		if a.Workers[i] != b.Workers[i] {
			t.Fatalf("worker %d differs across identical generations", i)
		}
	}
	c2 := c
	c2.Seed = c.Seed + 1
	d, err := c2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Workers {
		if a.Workers[i] != d.Workers[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

// TestSeedStreamIndependence: changing the accuracy distribution must not
// move task/worker locations (they come from an independent stream), so a
// sweep over accuracy only varies accuracies.
func TestSeedStreamIndependence(t *testing.T) {
	c1 := smallConfig()
	c2 := c1
	c2.Accuracy.Mean = 0.90
	a, err := c1.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Workers {
		if a.Workers[i].Loc != b.Workers[i].Loc {
			t.Fatalf("worker %d location moved when only accuracy changed", i)
		}
		if a.Workers[i].Acc == b.Workers[i].Acc {
			continue // can coincide occasionally
		}
	}
	for i := range a.Tasks {
		if a.Tasks[i].Loc != b.Tasks[i].Loc {
			t.Fatalf("task %d location moved when only accuracy changed", i)
		}
	}
}

func TestAccuracyMeanTracksConfig(t *testing.T) {
	for _, mean := range AccuracyMeanSweep() {
		c := smallConfig()
		c.NumWorkers = 5000
		c.Accuracy.Mean = mean
		in, err := c.Generate()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, w := range in.Workers {
			sum += w.Acc
		}
		got := sum / float64(len(in.Workers))
		// Truncation to [0.66, 1] biases the top of the sweep slightly
		// downward; 0.01 absolute tolerance covers it.
		if math.Abs(got-mean) > 0.01 {
			t.Fatalf("mean accuracy %v, config wants %v", got, mean)
		}
	}
}

func TestUniformDistribution(t *testing.T) {
	c := smallConfig()
	c.NumWorkers = 5000
	c.Accuracy = AccuracyDist{Kind: DistUniform, Mean: 0.86, Spread: UniformSpread}
	in, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 1.0, 0.0
	for _, w := range in.Workers {
		lo = math.Min(lo, w.Acc)
		hi = math.Max(hi, w.Acc)
	}
	if lo < 0.76-1e-9 || hi > 0.96+1e-9 {
		t.Fatalf("uniform samples span [%v, %v], want within [0.76, 0.96]", lo, hi)
	}
	if hi-lo < 0.15 {
		t.Fatalf("uniform samples span only [%v, %v] — not spread out", lo, hi)
	}
}

func TestScalePreservesDensity(t *testing.T) {
	c := Default()
	s := c.Scale(0.25)
	densityBefore := float64(c.NumWorkers) / (c.GridWidth * c.GridHeight)
	densityAfter := float64(s.NumWorkers) / (s.GridWidth * s.GridHeight)
	if math.Abs(densityBefore-densityAfter)/densityBefore > 0.01 {
		t.Fatalf("density changed: %v -> %v", densityBefore, densityAfter)
	}
	if s.NumTasks != 750 || s.NumWorkers != 10000 {
		t.Fatalf("scaled counts = %d, %d", s.NumTasks, s.NumWorkers)
	}
	if got := c.Scale(1); got != c {
		t.Fatal("Scale(1) must be identity")
	}
	if got := c.Scale(0); got != c {
		t.Fatal("Scale(0) must be identity (guard)")
	}
	tiny := c.Scale(1e-9)
	if tiny.NumTasks < 1 || tiny.NumWorkers < 1 {
		t.Fatal("scaling must keep at least one task and worker")
	}
}

func TestValidateErrors(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"zero tasks", func(c *Config) { c.NumTasks = 0 }, ErrBadCounts},
		{"zero workers", func(c *Config) { c.NumWorkers = 0 }, ErrBadCounts},
		{"zero grid", func(c *Config) { c.GridWidth = 0 }, ErrBadGrid},
		{"low mean", func(c *Config) { c.Accuracy.Mean = 0.5 }, ErrBadDist},
		{"bad k", func(c *Config) { c.K = 0 }, model.ErrBadCapacity},
		{"bad eps", func(c *Config) { c.Epsilon = 0 }, model.ErrBadEpsilon},
	} {
		c := Default()
		tc.mutate(&c)
		if _, err := c.Generate(); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestDefaultScaledIsFeasible: the scaled-down default workload must give
// every task enough nearby credit to complete — the generator's core
// usefulness property.
func TestDefaultScaledIsFeasible(t *testing.T) {
	in, err := smallConfig().Generate()
	if err != nil {
		t.Fatal(err)
	}
	ci := model.NewCandidateIndex(in)
	if err := ci.CheckFeasible(); err != nil {
		t.Fatalf("scaled default workload infeasible: %v", err)
	}
}

func TestDistKindString(t *testing.T) {
	if DistNormal.String() != "Normal" || DistUniform.String() != "Uniform" {
		t.Fatal("DistKind strings wrong")
	}
}
