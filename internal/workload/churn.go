package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ltc/internal/model"
	"ltc/internal/stats"
)

// ChurnConfig describes a dynamic-task-lifecycle workload: a Table IV
// instance whose task set mutates while the worker stream runs. A fraction
// of the tasks is present before the first arrival; the rest are posted
// online at the arrival times of a Poisson process (the task-arrival
// counterpart of the paper's worker check-in stream, cf. the continuous
// posting regime of hyperlocal frameworks). Optionally every task expires
// TTL arrivals after its post — the driver retires it if it is still
// incomplete by then.
type ChurnConfig struct {
	// Base is the underlying Table IV workload (tasks, workers, K, ε, ...).
	Base Config
	// InitialFraction of Base.NumTasks exists before the first check-in.
	// The remainder is posted online. Must lie in (0, 1]; the acceptance
	// regime of the churn experiment uses ≤ 0.8 (≥ 20% late posts).
	InitialFraction float64
	// PostRate is the Poisson intensity λ of task posts per worker arrival.
	// 0 picks a rate that spreads all late posts over the first 40% of the
	// worker stream, leaving the tail to finish them.
	PostRate float64
	// TTL is the number of arrivals after its post at which a task expires
	// (is retired if still incomplete). 0 disables expiry.
	TTL int
	// Seed drives the post-time draws (independent of Base.Seed streams).
	Seed uint64
}

// EventKind discriminates lifecycle events.
type EventKind int

// Lifecycle event kinds.
const (
	EventPost EventKind = iota
	EventRetire
)

// TaskEvent is one lifecycle event on the arrival clock: it fires after
// Arrival workers have checked in (0 = before the first worker).
type TaskEvent struct {
	Arrival int
	Kind    EventKind
	// Task is the task to post (EventPost). Its ID is the dense global ID
	// the platform will assign, pre-computed so drivers can cross-check.
	Task model.Task
	// ID is the task to retire (EventRetire).
	ID model.TaskID
}

// ChurnWorkload is a generated dynamic-lifecycle scenario: the initial
// instance (first tasks only, full worker stream) plus the ordered post and
// expiry events to replay against a Platform.
type ChurnWorkload struct {
	// Instance holds the initial task set and the full worker stream.
	Instance *model.Instance
	// Events is sorted by Arrival (posts before retires at equal times).
	Events []TaskEvent
	// TotalTasks = initial + posted.
	TotalTasks int
	// InitialTasks is len(Instance.Tasks).
	InitialTasks int
}

// PostedLate counts tasks posted after the first worker arrival.
func (cw *ChurnWorkload) PostedLate() int {
	n := 0
	for _, e := range cw.Events {
		if e.Kind == EventPost && e.Arrival >= 1 {
			n++
		}
	}
	return n
}

// ErrBadChurn is returned for out-of-range churn parameters.
var ErrBadChurn = errors.New("workload: churn parameters out of range")

// DefaultChurn returns a churn scenario over the given base workload with
// 60% of the tasks initial (40% posted online) and no expiry.
func DefaultChurn(base Config) ChurnConfig {
	return ChurnConfig{Base: base, InitialFraction: 0.6, Seed: base.Seed}
}

// Generate builds the churn workload. Task locations and workers come from
// the base generator, so a ChurnConfig with InitialFraction = 1 reproduces
// the static instance exactly; lowering the fraction converts the trailing
// tasks into online posts (renumbered densely in post order, matching the
// platform's ID assignment). Deterministic in the config.
func (c ChurnConfig) Generate() (*ChurnWorkload, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	base, err := c.Base.Generate()
	if err != nil {
		return nil, err
	}
	return c.split(base)
}

// GenerateOn builds the churn workload over a pre-generated instance — the
// composition point for the Scenario layer: a skewed instance (hotspot,
// flash crowd, ...) splits into initial tasks plus online posts exactly as
// Generate splits the uniform base. c.Base is not consulted; the instance
// provides the tasks and the worker stream. Deterministic in (c, base).
func (c ChurnConfig) GenerateOn(base *model.Instance) (*ChurnWorkload, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c.split(base)
}

func (c ChurnConfig) validate() error {
	if c.InitialFraction <= 0 || c.InitialFraction > 1 {
		return fmt.Errorf("%w: InitialFraction %v", ErrBadChurn, c.InitialFraction)
	}
	if c.PostRate < 0 || c.TTL < 0 {
		return fmt.Errorf("%w: PostRate %v, TTL %d", ErrBadChurn, c.PostRate, c.TTL)
	}
	return nil
}

// split converts the trailing tasks of a generated instance into online
// posts on the arrival clock, plus TTL expiries when configured.
func (c ChurnConfig) split(base *model.Instance) (*ChurnWorkload, error) {
	nInitial := int(math.Ceil(c.InitialFraction * float64(len(base.Tasks))))
	if nInitial < 1 {
		nInitial = 1
	}
	posted := base.Tasks[nInitial:]
	in := &model.Instance{
		Tasks:   base.Tasks[:nInitial:nInitial],
		Workers: base.Workers,
		Epsilon: base.Epsilon,
		K:       base.K,
		Model:   base.Model,
		MinAcc:  base.MinAcc,
	}

	rate := c.PostRate
	if rate == 0 && len(posted) > 0 {
		span := float64(len(base.Workers)) * 0.4
		if span < 1 {
			span = 1
		}
		rate = float64(len(posted)) / span
	}

	cw := &ChurnWorkload{
		Instance:     in,
		TotalTasks:   len(base.Tasks),
		InitialTasks: nInitial,
	}
	rng := stats.NewRand(stats.SplitSeed(c.Seed, 2))
	clock := 0.0
	for i, t := range posted {
		// Poisson process: exponential inter-arrival gaps at intensity λ.
		clock += rng.ExpFloat64() / rate
		arrival := int(clock)
		if arrival < 1 {
			arrival = 1 // online posts land after the first check-in
		}
		if arrival > len(base.Workers) {
			arrival = len(base.Workers)
		}
		gid := model.TaskID(nInitial + i) // dense platform ID, in post order
		cw.Events = append(cw.Events, TaskEvent{
			Arrival: arrival,
			Kind:    EventPost,
			Task:    model.Task{ID: gid, Loc: t.Loc},
		})
	}
	if c.TTL > 0 {
		for t := 0; t < nInitial; t++ {
			cw.Events = append(cw.Events, TaskEvent{
				Arrival: c.TTL, Kind: EventRetire, ID: model.TaskID(t),
			})
		}
		for _, e := range cw.Events {
			if e.Kind == EventPost {
				cw.Events = append(cw.Events, TaskEvent{
					Arrival: e.Arrival + c.TTL, Kind: EventRetire, ID: e.Task.ID,
				})
			}
		}
	}
	// Sort by arrival; posts fire before retires at the same tick, and ties
	// keep ID order so replays are deterministic.
	sort.SliceStable(cw.Events, func(i, j int) bool {
		a, b := cw.Events[i], cw.Events[j]
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		if a.Kind != b.Kind {
			return a.Kind == EventPost
		}
		if a.Kind == EventPost {
			return a.Task.ID < b.Task.ID
		}
		return a.ID < b.ID
	})
	return cw, nil
}
