package httpapi

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseServer serves one canned /events response with raw, caller-controlled
// framing — the fake server for parser regression tests. The body is
// written in one piece; the client's scanner sees exactly these bytes.
func sseServer(t *testing.T, body string) *Client {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/events" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return &Client{Base: srv.URL}
}

// collect drains the stream until io.EOF, failing the test on any other
// error.
func collect(t *testing.T, st *EventStream) []Event {
	t.Helper()
	var evs []Event
	for {
		e, err := st.Next()
		if err == io.EOF {
			return evs
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		evs = append(evs, e)
	}
}

// TestEventStreamPathologicalFraming pins the SSE parser against framing
// the old line-at-a-time parser mishandled: consecutive data lines without
// a blank-line separator (the earlier event was silently overwritten), one
// JSON document split across several data lines (the spec's \n join),
// comment keep-alives, bare "data" lines, and a missing space after the
// colon.
func TestEventStreamPathologicalFraming(t *testing.T) {
	body := strings.Join([]string{
		": keep-alive comment, ignored",
		`data: {"seq":1,"kind":"task_posted","task":10}`,
		`data: {"seq":2,"kind":"task_retired","task":10}`, // same frame: must NOT clobber seq 1
		"",
		"data", // bare field name: empty data line, joined as "\n"
		`data:{"seq":3,"kind":"task_completed","task":11}`, // no space after the colon
		"",
		`data: {"seq":4,`, // one JSON document split across data lines
		`data:  "kind":"platform_done",`,
		`data:  "task":0}`,
		"",
		"", // extra separators between frames are noise, not frames
		`event: task_posted`,
		`data: {"seq":5,"kind":"task_posted","task":12}`,
		"",
	}, "\n") + "\n"

	st, err := sseServer(t, body).OpenEvents(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = st.Close() }()

	evs := collect(t, st)
	if len(evs) != 5 {
		t.Fatalf("got %d events %+v, want 5", len(evs), evs)
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d — frames dropped or reordered", i, e.Seq, i+1)
		}
	}
	if evs[0].Kind != "task_posted" || evs[1].Kind != "task_retired" {
		t.Fatalf("consecutive data lines decoded as %q, %q", evs[0].Kind, evs[1].Kind)
	}
	if evs[3].Kind != "platform_done" {
		t.Fatalf("multi-line data frame decoded as %+v", evs[3])
	}
}

// TestEventStreamBadFrame: a frame that isn't JSON surfaces as an error
// naming the payload, not a silent skip.
func TestEventStreamBadFrame(t *testing.T) {
	st, err := sseServer(t, "data: not json\n\n").OpenEvents(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = st.Close() }()
	if _, err := st.Next(); err == nil || !strings.Contains(err.Error(), "bad event frame") {
		t.Fatalf("Next on garbage frame = %v, want bad-event-frame error", err)
	}
}

// TestEventStreamCloseUnblocksNext: closing the stream while Next is
// blocked on an idle connection yields io.EOF, not a transport error —
// the errors.Is/closed-flag replacement for the old error-string matching.
func TestEventStreamCloseUnblocksNext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.(http.Flusher).Flush()
		<-r.Context().Done() // hold the stream open, never send an event
	}))
	defer srv.Close()
	st, err := (&Client{Base: srv.URL}).OpenEvents(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := st.Next()
		got <- err
	}()
	time.Sleep(20 * time.Millisecond) // let Next block on the wire
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != io.EOF {
			t.Fatalf("Next after Close = %v, want io.EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next still blocked after Close")
	}
}

// TestIsClosedErr pins the sentinel matching: wrapped context cancellation
// and net.ErrClosed are teardown, anything else is a real failure.
func TestIsClosedErr(t *testing.T) {
	if !isClosedErr(fmt.Errorf("read: %w", context.Canceled)) {
		t.Fatal("wrapped context.Canceled not recognized")
	}
	if !isClosedErr(fmt.Errorf("read tcp: %w", net.ErrClosed)) {
		t.Fatal("wrapped net.ErrClosed not recognized")
	}
	if isClosedErr(io.ErrUnexpectedEOF) {
		t.Fatal("unexpected EOF misread as clean teardown")
	}
}
