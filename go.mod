module ltc

go 1.24
