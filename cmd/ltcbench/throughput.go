package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"ltc"
)

// throughputResult is one measured (scenario, mode, shard count, batch
// size, shard layout) cell of the benchmark artifact.
type throughputResult struct {
	// Scenario names the workload scenario the cell was measured on
	// (-exp scenarios). Empty for -exp throughput, whose workload is the
	// uniform Table IV instance — identical to the "uniform" scenario, so
	// benchdiff treats the two labels as the same cell.
	Scenario string `json:"scenario,omitempty"`
	// Mode is "percall" (one CheckIn per worker), "batch" (CheckInBatch
	// chunks of BatchSize) or "async" (CheckInAsync + Flush).
	Mode      string `json:"mode"`
	Shards    int    `json:"shards"`
	Effective int    `json:"effective_shards"`
	BatchSize int    `json:"batch_size,omitempty"`
	// Balanced marks cells measured under the load-aware tile→shard
	// layout (WithBalancedShards) instead of fixed striping.
	Balanced bool `json:"balanced,omitempty"`
	// Presampled marks cells whose balanced layout was packed from only
	// the causal prefix of the worker stream (WithLoadPrefix) instead of
	// the default full-stream oracle sample — the profile a live
	// deployment actually has at partition time. Drift scenarios measured
	// against this layout expose the staleness that rebalancing corrects;
	// the oracle-balanced cells (Presampled false) keep their identity.
	Presampled bool `json:"presampled,omitempty"`
	// Rebalanced marks cells measured with adaptive live re-sharding on
	// top of the balanced layout (WithRebalance). Absent from artifacts
	// recorded before migrations existed, which decodes as false — those
	// cells keep their pre-rebalance identity in benchdiff (see cellKey).
	Rebalanced bool `json:"rebalanced,omitempty"`
	// Migrations is the last stream's committed tile-migration count (0
	// unless Rebalanced).
	Migrations int `json:"migrations,omitempty"`
	// Feeders is the number of concurrent feeder goroutines the cell was
	// measured with. 0 (artifacts recorded before the feeders axis existed)
	// means the artifact's top-level Feeders value — benchdiff normalizes
	// through that default so pre-axis artifacts keep their cell identity.
	Feeders int `json:"feeders,omitempty"`
	// WorkersPerSec is ingested check-ins per wall-clock second — the
	// headline throughput number.
	WorkersPerSec float64 `json:"workers_per_sec"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	// Latency is the global LTC objective of the last completed stream —
	// the quality side of the throughput trade.
	Latency int `json:"latency"`
	// Imbalance is the last stream's load imbalance (max shard's routed
	// check-ins over the per-shard mean; 1.0 = even).
	Imbalance float64 `json:"imbalance,omitempty"`
	Runs      int     `json:"runs"`
}

// throughputArtifact is the machine-readable output of -exp throughput
// -json: enough context to compare the trajectory across PRs.
type throughputArtifact struct {
	Preset     string             `json:"preset"`
	Algo       string             `json:"algo"`
	Scale      float64            `json:"scale"`
	Tasks      int                `json:"tasks"`
	Workers    int                `json:"workers"`
	Feeders    int                `json:"feeders"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Results    []throughputResult `json:"results"`
}

// runThroughput measures the dispatch layer's check-in throughput from the
// CLI. For each requested shard count and feeder count it feeds the full
// worker stream to a fresh Platform from that many concurrent goroutines —
// per-call, in CheckInBatch chunks (one row per -batch size) and via
// CheckInAsync (-async) — each repeated for at least passDur, and prints
// workers/sec alongside the resulting global latency. With -json the same
// numbers are written as a machine-readable artifact (see
// throughputArtifact).
func runThroughput(shardList, batchList, feedersList string, async bool, jsonPath string, scale float64, seed uint64, algoName string) error {
	shardCounts, err := parseCountList("-shards", shardList)
	if err != nil {
		return err
	}
	if len(shardCounts) == 0 {
		return fmt.Errorf("-shards must list at least one shard count")
	}
	batchSizes, err := parseCountList("-batch", batchList)
	if err != nil {
		return err
	}
	feederCounts, err := parseFeeders(feedersList)
	if err != nil {
		return err
	}
	algo := benchAlgo(algoName)

	cfg := ltc.DefaultWorkload().Scale(scale)
	cfg.Seed = seed
	in, err := cfg.Generate()
	if err != nil {
		return err
	}
	fmt.Printf("throughput: %s over %d tasks / %d workers, feeder counts %v\n\n",
		algo, len(in.Tasks), len(in.Workers), feederCounts)

	art := throughputArtifact{
		Preset:     fmt.Sprintf("tableiv-default-x%g", scale),
		Algo:       string(algo),
		Scale:      scale,
		Tasks:      len(in.Tasks),
		Workers:    len(in.Workers),
		Feeders:    feederCounts[0],
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mode\tshards\teffective\tbatch\tfeeders\tworkers/s\tns/op\tallocs/op\tglobal latency\truns")
	for _, n := range shardCounts {
		var cells []throughputResult
		for _, f := range feederCounts {
			cells = append(cells, throughputResult{Mode: "percall", Shards: n, Feeders: f})
			for _, b := range batchSizes {
				cells = append(cells, throughputResult{Mode: "batch", Shards: n, BatchSize: b, Feeders: f})
			}
			if async {
				cells = append(cells, throughputResult{Mode: "async", Shards: n, Feeders: f})
			}
		}
		for _, cell := range cells {
			res, err := measureThroughput(in, algo, seed, cell)
			if err != nil {
				return err
			}
			art.Results = append(art.Results, res)
			batchCol := "-"
			if res.BatchSize > 0 {
				batchCol = strconv.Itoa(res.BatchSize)
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%d\t%.0f\t%.0f\t%.1f\t%d\t%d\n",
				res.Mode, res.Shards, res.Effective, batchCol, res.Feeders,
				res.WorkersPerSec, res.NsPerOp, res.AllocsPerOp, res.Latency, res.Runs)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(&art, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(data)
			return err
		}
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote benchmark artifact to %s\n", jsonPath)
	}
	return nil
}

// parseFeeders parses the -feeders list, defaulting to a single entry of
// GOMAXPROCS (the pre-axis behaviour) when the flag is empty.
func parseFeeders(list string) ([]int, error) {
	counts, err := parseCountList("-feeders", list)
	if err != nil {
		return nil, err
	}
	if len(counts) == 0 {
		counts = []int{runtime.GOMAXPROCS(0)}
	}
	return counts, nil
}

// parseCountList parses a comma-separated list of positive counts (shard
// counts, batch sizes); an empty list is fine and yields nil.
func parseCountList(flagName, list string) ([]int, error) {
	if list == "" {
		return nil, nil
	}
	var out []int
	for _, s := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad %s entry %q", flagName, s)
		}
		out = append(out, n)
	}
	return out, nil
}

// benchAlgo resolves the benchmark algorithm flag, defaulting to AAM.
func benchAlgo(name string) ltc.Algorithm {
	if name == "" {
		return ltc.AAM
	}
	return ltc.Algorithm(name)
}

// passMetrics accumulates the measured cost of feedStream calls and
// nothing else: the wall clock and the allocation counters bracket exactly
// the feed, so platform construction, drainer startup and the pass
// bookkeeping around each run are never charged to the hot path. Earlier
// artifacts (through BENCH_pr5.json) bracketed the whole pass loop —
// NewPlatform included — which inflated allocs/op by the per-run
// construction cost; TestPassMetricsBracketsFeedOnly pins the corrected
// accounting.
type passMetrics struct {
	checkins int
	elapsed  time.Duration
	mallocs  uint64
	bytes    uint64
}

// measure runs one feed with the clock and MemStats bracketing exactly that
// call, folds the cost in, and returns the feed's result.
func (m *passMetrics) measure(feed func() (int, error)) (int, error) {
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	fed, err := feed()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	m.checkins += fed
	m.elapsed += elapsed
	m.mallocs += ms1.Mallocs - ms0.Mallocs
	m.bytes += ms1.TotalAlloc - ms0.TotalAlloc
	return fed, err
}

// add folds another pass's metrics in.
func (m *passMetrics) add(o passMetrics) {
	m.checkins += o.checkins
	m.elapsed += o.elapsed
	m.mallocs += o.mallocs
	m.bytes += o.bytes
}

// rate returns ingested check-ins per second of measured feed time.
func (m *passMetrics) rate() float64 {
	if m.elapsed <= 0 {
		return 0
	}
	return float64(m.checkins) / m.elapsed.Seconds()
}

// allocsPerOp and bytesPerOp report per-check-in allocation cost with
// testing.B's convention — total divided by operations, truncated — so a
// path whose only allocations are amortized (arena blocks, slice regrowth)
// reports a flat 0, exactly like b.AllocsPerOp.
func (m *passMetrics) allocsPerOp() float64 {
	if m.checkins == 0 {
		return 0
	}
	return float64(m.mallocs / uint64(m.checkins))
}

func (m *passMetrics) bytesPerOp() float64 {
	if m.checkins == 0 {
		return 0
	}
	return float64(m.bytes / uint64(m.checkins))
}

// measureThroughput runs one (scenario, mode, shards, batch, layout,
// feeders) cell as best-of-N passes: each pass feeds fresh platforms the
// full stream until passDur elapses, and the cell reports the fastest pass.
// Scheduling interference on a shared box only ever slows a pass down, so
// taking the best pass filters one-sided noise out of the committed
// BENCH_pr*.json artifacts (which the benchdiff gate compares at a 10%
// tolerance). Only the feedStream calls themselves are measured (see
// passMetrics); allocation metrics aggregate across all passes —
// allocations are deterministic per check-in, so they need no noise
// filtering.
func measureThroughput(in *ltc.Instance, algo ltc.Algorithm, seed uint64, cell throughputResult) (throughputResult, error) {
	const (
		passes  = 3
		passDur = 500 * time.Millisecond
	)
	res := cell
	mode, batch, feeders := cell.Mode, cell.BatchSize, cell.Feeders
	opts := []ltc.Option{ltc.WithShards(cell.Shards), ltc.WithSeed(seed)}
	if cell.Balanced {
		opts = append(opts, ltc.WithBalancedShards())
	}
	if cell.Presampled {
		// Pack the layout from the first eighth of the stream — the causal
		// profile a deployment has at launch. Under drift scenarios this
		// layout goes stale mid-stream, which is the hole rebalancing fills.
		opts = append(opts, ltc.WithLoadPrefix(len(in.Workers)/8))
	}
	if cell.Rebalanced {
		// Scale the forecast window to the stream so the rebalancer folds
		// and moves several times per run even at smoke scales — the
		// service defaults assume an unbounded stream and would never fire
		// inside one bench pass. Alpha 1 (no memory) reacts fastest, which
		// matters when a whole run is only ~16 forecast windows long.
		interval := len(in.Workers) / 16
		if interval < 64 {
			interval = 64
		}
		opts = append(opts, ltc.WithRebalance(ltc.RebalanceOptions{
			Interval: interval, Threshold: 1.2, MaxMoves: 4, Alpha: 1,
		}))
	}
	var agg passMetrics
	for pass := 0; pass < passes; pass++ {
		var pm passMetrics
		start := time.Now()
		for time.Since(start) < passDur {
			plat, err := ltc.NewPlatform(in, algo, opts...)
			if err != nil {
				return res, err
			}
			if _, err := pm.measure(func() (int, error) {
				return feedStream(plat, in.Workers, feeders, mode, batch)
			}); err != nil {
				return res, err
			}
			res.Runs++
			res.Latency = plat.Latency()
			res.Effective = plat.Shards()
			res.Imbalance = plat.Imbalance()
			res.Migrations = plat.Migrations()
			// Release the platform between runs (a no-op after the async
			// path already closed); outside the measured bracket.
			if err := plat.Close(); err != nil {
				return res, err
			}
		}
		agg.add(pm)
		if rate := pm.rate(); rate > res.WorkersPerSec {
			res.WorkersPerSec = rate
			res.NsPerOp = float64(pm.elapsed.Nanoseconds()) / float64(pm.checkins)
		}
	}
	res.AllocsPerOp = agg.allocsPerOp()
	res.BytesPerOp = agg.bytesPerOp()
	return res, nil
}

// feedStream pushes the whole worker stream into the platform from
// `feeders` goroutines using the selected ingestion mode, returning how
// many check-ins were ingested.
func feedStream(plat *ltc.Platform, workers []ltc.Worker, feeders int, mode string, batch int) (int, error) {
	var cursor, fed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch mode {
			case "percall":
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(workers) || plat.Done() {
						return
					}
					if _, err := plat.CheckIn(workers[i]); err != nil {
						return // platform completed under contention
					}
					fed.Add(1)
				}
			case "batch":
				for {
					i := int(cursor.Add(int64(batch))) - batch
					if i >= len(workers) || plat.Done() {
						return
					}
					j := i + batch
					if j > len(workers) {
						j = len(workers)
					}
					res, err := plat.CheckInBatch(workers[i:j])
					fed.Add(int64(len(res)))
					if err != nil {
						return // truncated: platform completed
					}
				}
			case "async":
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(workers) || plat.Done() {
						return
					}
					if err := plat.CheckInAsync(workers[i]); err != nil {
						return
					}
					fed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if mode == "async" {
		plat.Flush()
		if err := plat.Close(); err != nil {
			return int(fed.Load()), err
		}
	}
	return int(fed.Load()), nil
}
