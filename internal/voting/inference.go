package voting

import (
	"errors"
	"math"
)

// This file implements the truth-inference side of quality control that the
// paper surveys in §VI-A: besides the Hoeffding-weighted majority vote of
// Definition 4 (Aggregate), platforms commonly use an unweighted majority
// vote or jointly estimate worker reliabilities and labels with EM
// (Dawid-Skene style). Both are provided so examples and tests can compare
// the paper's choice against the standard alternatives.

// MajorityVote aggregates answers per task by simple (unweighted) majority.
// Tasks without answers get label 0; exact ties resolve to Yes.
func MajorityVote(numTasks int, answers []Answer) []Label {
	score := make([]int, numTasks)
	seen := make([]bool, numTasks)
	for _, a := range answers {
		score[a.Task] += int(a.Value)
		seen[a.Task] = true
	}
	out := make([]Label, numTasks)
	for t := range out {
		switch {
		case !seen[t]:
			out[t] = 0
		case score[t] >= 0:
			out[t] = Yes
		default:
			out[t] = No
		}
	}
	return out
}

// EMResult is the output of EMInference.
type EMResult struct {
	// Labels is the inferred answer per task (0 for unanswered tasks).
	Labels []Label
	// WorkerAccuracy maps worker arrival index → estimated accuracy.
	WorkerAccuracy map[int]float64
	// Iterations actually performed before convergence.
	Iterations int
}

// EMOptions tunes EMInference. The zero value uses the defaults.
type EMOptions struct {
	// MaxIterations bounds the EM loop (default 50).
	MaxIterations int
	// Smoothing is the Laplace pseudo-count applied to worker accuracy
	// estimates (default 1), keeping them off the 0/1 boundary.
	Smoothing float64
}

// ErrNoData is returned by EMInference when there are no answers at all.
var ErrNoData = errors.New("voting: no answers to infer from")

// EMInference jointly estimates task labels and per-worker accuracies with
// a binary Dawid-Skene-style EM: labels start from the unweighted majority
// vote; each round re-estimates every worker's accuracy as their
// (smoothed) agreement rate with the current labels, then re-aggregates
// labels with log-odds weights log(acc / (1 − acc)). The loop stops when
// the labels reach a fixed point.
//
// Unlike Aggregate, EMInference uses no predicted accuracies — it recovers
// reliabilities from the answers alone, which is what a platform without
// historical data would run.
func EMInference(numTasks int, answers []Answer, opts EMOptions) (*EMResult, error) {
	if len(answers) == 0 {
		return nil, ErrNoData
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 50
	}
	if opts.Smoothing <= 0 {
		opts.Smoothing = 1
	}

	byWorker := map[int][]Answer{}
	for _, a := range answers {
		byWorker[a.Worker] = append(byWorker[a.Worker], a)
	}

	labels := MajorityVote(numTasks, answers)
	acc := make(map[int]float64, len(byWorker))
	res := &EMResult{}

	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1

		// M-step: worker accuracy = smoothed agreement with labels.
		for w, as := range byWorker {
			agree, total := opts.Smoothing, 2*opts.Smoothing
			for _, a := range as {
				if labels[a.Task] == 0 {
					continue
				}
				total++
				if a.Value == labels[a.Task] {
					agree++
				}
			}
			acc[w] = agree / total
		}

		// E-step: labels = log-odds weighted vote.
		next := make([]Label, numTasks)
		score := make([]float64, numTasks)
		seen := make([]bool, numTasks)
		for _, a := range answers {
			p := acc[a.Worker]
			// Clamp away from the boundary for a finite log-odds.
			if p > 0.999 {
				p = 0.999
			} else if p < 0.001 {
				p = 0.001
			}
			score[a.Task] += math.Log(p/(1-p)) * float64(a.Value)
			seen[a.Task] = true
		}
		for t := range next {
			switch {
			case !seen[t]:
				next[t] = 0
			case score[t] >= 0:
				next[t] = Yes
			default:
				next[t] = No
			}
		}

		converged := true
		for t := range next {
			if next[t] != labels[t] {
				converged = false
				break
			}
		}
		labels = next
		if converged {
			break
		}
	}
	res.Labels = labels
	res.WorkerAccuracy = acc
	return res, nil
}

// AccuracyAgainstTruth grades a label vector against a simulator's hidden
// ground truth, returning the fraction of answered tasks labelled
// correctly. ok is false when no task was answered.
func AccuracyAgainstTruth(sim *Simulator, labels []Label) (float64, bool) {
	right, total := 0, 0
	for t, l := range labels {
		if l == 0 {
			continue
		}
		total++
		if l == sim.truth[t] {
			right++
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(right) / float64(total), true
}
