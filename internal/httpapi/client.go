package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Client is a typed client for the ltcd gateway, used by the ltcbench
// loadgen and the end-to-end tests. The zero HTTP client is replaced with
// http.DefaultClient.
type Client struct {
	// Base is the gateway's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport (http.DefaultClient when nil).
	HTTP *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// doJSON runs one request with an optional JSON body and decodes the JSON
// response into out (when non-nil). Non-2xx responses decode the error
// body into a *httpError-backed error.
func (c *Client) doJSON(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusMisdirectedRequest {
		// A cluster node refusing traffic it does not own: surface the typed
		// redirect so routing clients can heal their table and retry.
		var rb redirectBody
		if json.NewDecoder(resp.Body).Decode(&rb) == nil {
			return &RedirectError{Owner: rb.Owner, Index: rb.Index, Msg: rb.Error}
		}
		return fmt.Errorf("%s %s: HTTP 421 with unreadable redirect body", method, path)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var he httpError
		if json.NewDecoder(resp.Body).Decode(&he) == nil && he.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, he.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CheckIn posts one worker and returns its receipt.
func (c *Client) CheckIn(w Worker) (Receipt, error) {
	var rec Receipt
	err := c.doJSON(http.MethodPost, "/checkin", w, &rec)
	return rec, err
}

// CheckInBatch posts a batch; done reports whether the platform completed
// (possibly truncating the receipts to the ingested prefix).
func (c *Client) CheckInBatch(ws []Worker) (recs []Receipt, done bool, err error) {
	var resp BatchResponse
	if err := c.doJSON(http.MethodPost, "/checkin/batch", BatchRequest{Workers: ws}, &resp); err != nil {
		return nil, false, err
	}
	return resp.Receipts, resp.Done, nil
}

// PostTask posts a new task at (x, y) and returns its global ID.
func (c *Client) PostTask(x, y float64) (int, error) {
	var resp TaskResponse
	err := c.doJSON(http.MethodPost, "/tasks", TaskRequest{X: x, Y: y}, &resp)
	return resp.ID, err
}

// RetireTask retires the task with the given ID.
func (c *Client) RetireTask(id int) error {
	return c.doJSON(http.MethodDelete, fmt.Sprintf("/tasks/%d", id), nil, nil)
}

// Stats fetches the platform's progress snapshot.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	err := c.doJSON(http.MethodGet, "/stats", nil, &st)
	return st, err
}

// EventStream is an open GET /events subscription. It is single-reader;
// Close (or cancelling the OpenEvents context) ends it.
type EventStream struct {
	resp    *http.Response
	sc      *bufio.Scanner
	data    []string // data lines of the frame being accumulated
	pending []Event  // decoded but not yet returned (multi-event frames)
	closed  atomic.Bool
}

// OpenEvents subscribes to the gateway's event stream. When it returns
// without error the server-side subscription is live: every platform event
// published afterwards will be delivered (the gateway subscribes before it
// writes the response headers). Cancel ctx or call Close to end the
// stream.
func (c *Client) OpenEvents(ctx context.Context) (*EventStream, error) {
	return c.OpenEventsSince(ctx, 0)
}

// OpenEventsSince subscribes to the event stream resuming after per-node
// sequence number since. Cluster nodes record their whole event history, so
// since > 0 replays everything the caller has not yet folded — the resume
// half of the exactly-once cluster audit. Plain gateways ignore the
// parameter (their streams start at the subscription point).
func (c *Client) OpenEventsSince(ctx context.Context, since uint64) (*EventStream, error) {
	path := "/events"
	if since > 0 {
		path = fmt.Sprintf("/events?since=%d", since)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		_ = resp.Body.Close()
		return nil, fmt.Errorf("GET /events: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &EventStream{resp: resp, sc: sc}, nil
}

// Next blocks for the next event. It returns io.EOF when the stream ends —
// including via Close or context cancellation.
//
// Framing follows the SSE spec: every "data:" line of a frame is kept and
// the payload is the lines joined with "\n" (earlier versions overwrote it,
// silently dropping all but the last line), comment lines (":...") are
// ignored, and a blank line dispatches the frame. A payload carrying
// several JSON values — a server that streams events without blank-line
// separators — yields every event, in order, across successive Next calls.
func (s *EventStream) Next() (Event, error) {
	if len(s.pending) > 0 {
		e := s.pending[0]
		s.pending = s.pending[1:]
		return e, nil
	}
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			if len(s.data) == 0 {
				continue // separator between frames we didn't accumulate
			}
			payload := strings.Join(s.data, "\n")
			s.data = s.data[:0]
			evs, err := decodeFrame(payload)
			if err != nil {
				return Event{}, err
			}
			if len(evs) == 0 {
				continue
			}
			s.pending = append(s.pending, evs[1:]...)
			return evs[0], nil
		case strings.HasPrefix(line, ":"):
			// Comment line (keep-alives), ignored per spec.
		case strings.HasPrefix(line, "data:"):
			v := strings.TrimPrefix(line, "data:")
			// At most one leading space after the colon is framing, not
			// payload; any further whitespace belongs to the data.
			s.data = append(s.data, strings.TrimPrefix(v, " "))
		case line == "data":
			s.data = append(s.data, "")
		}
	}
	if err := s.sc.Err(); err != nil && !s.closed.Load() && !isClosedErr(err) {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// decodeFrame decodes the joined data payload of one SSE frame. A frame
// normally holds exactly one JSON event, but pathological framing (several
// complete events between two blank lines) decodes to all of them so none
// is dropped.
func decodeFrame(payload string) ([]Event, error) {
	dec := json.NewDecoder(strings.NewReader(payload))
	var evs []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return evs, nil
		} else if err != nil {
			return nil, fmt.Errorf("bad event frame %q: %w", payload, err)
		}
		evs = append(evs, e)
	}
}

// Close tears the subscription down. A Next blocked on the wire unblocks
// with io.EOF.
func (s *EventStream) Close() error {
	s.closed.Store(true)
	return s.resp.Body.Close()
}

// isClosedErr reports whether the scanner error is the expected result of
// tearing the stream down rather than a transport failure: a cancelled
// request context, or a connection closed under the reader. Matched with
// errors.Is — net.ErrClosed is the canonical sentinel for reads on closed
// connections — never by error-string comparison. Reads that race with a
// local Close are covered by the EventStream.closed flag instead, because
// net/http reports those with an unexported, unwrapped error.
func isClosedErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, net.ErrClosed)
}

// StreamEvents opens the event stream and invokes fn for every event until
// the stream ends, ctx is cancelled, or fn returns a non-nil error —
// ErrStopStreaming ends the stream cleanly (nil is returned), any other
// error is passed through.
func (c *Client) StreamEvents(ctx context.Context, fn func(Event) error) error {
	st, err := c.OpenEvents(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return nil // cancelled while connecting: the normal shutdown path
		}
		return err
	}
	defer func() { _ = st.Close() }()
	for {
		e, err := st.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			if err == ErrStopStreaming {
				return nil
			}
			return err
		}
	}
}

// ErrStopStreaming, returned by a StreamEvents callback, ends the stream
// without error.
var ErrStopStreaming = errors.New("httpapi: stop streaming")

// WaitReady polls GET /stats until the gateway answers, backing off between
// attempts with backoffDelay. It is the readiness probe a supervisor runs
// against freshly-spawned gateways; the capped-exponential-with-jitter
// schedule keeps a loadgen supervising several cluster nodes from hammering
// a slow booter in lockstep. Returns when the gateway is ready, or with the
// last probe error once ctx ends.
func (c *Client) WaitReady(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		_, err := c.Stats()
		if err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("httpapi: gateway %s not ready: %w (last probe: %v)", c.Base, ctx.Err(), err)
		case <-time.After(backoffDelay(attempt)):
		}
	}
}

// backoffDelay is the retry schedule shared by every readiness probe and
// stream-reconnect loop: exponential from 25ms, capped at 1s, with a
// uniform ±25% jitter so concurrent retriers (a loadgen supervising N
// nodes, N clients probing one node) decorrelate instead of synchronizing.
func backoffDelay(attempt int) time.Duration {
	if attempt > 6 {
		attempt = 6 // 25ms << 6 = 1.6s; the cap below trims it to 1s
	}
	d := 25 * time.Millisecond << uint(attempt)
	if d > time.Second {
		d = time.Second
	}
	// ±25%: scale by a factor drawn uniformly from [0.75, 1.25).
	return time.Duration(float64(d) * (0.75 + 0.5*rand.Float64()))
}
