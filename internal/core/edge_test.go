package core

import (
	"testing"

	"ltc/internal/geo"
	"ltc/internal/model"
	"ltc/internal/stats"
)

// singleWorkerInstance: one worker who can finish everything at once.
func singleWorkerInstance() *model.Instance {
	return &model.Instance{
		Tasks:   []model.Task{{ID: 0}},
		Workers: []model.Worker{{Index: 1, Acc: 1}},
		Epsilon: 0.5, // δ ≈ 1.39, one Acc*=1 assignment is not enough...
		K:       1,
		Model:   model.ConstantAccuracy{P: 1}, // Acc* = 1 < δ
		MinAcc:  0.5,
	}
}

// TestSingleWorkerInsufficient: δ > 1 with a single unit-credit worker can
// never complete; every algorithm must report the incomplete stream rather
// than looping or panicking.
func TestSingleWorkerInsufficient(t *testing.T) {
	in := singleWorkerInstance()
	ci := model.NewCandidateIndex(in)
	for _, algo := range []Offline{&MCFLTC{}, BaseOff{}} {
		if _, err := RunOffline(in, ci, algo); err == nil {
			t.Fatalf("%s: expected ErrIncomplete", algo.Name())
		}
	}
	for _, factory := range []OnlineFactory{
		func(in *model.Instance, ci *model.CandidateIndex) Online { return NewLAF(in, ci) },
		func(in *model.Instance, ci *model.CandidateIndex) Online { return NewAAM(in, ci) },
		func(in *model.Instance, ci *model.CandidateIndex) Online { return NewRandom(in, ci, 1) },
	} {
		if _, err := RunOnline(in, ci, factory); err == nil {
			t.Fatal("expected ErrIncomplete")
		}
	}
}

// TestSingleWorkerSufficient: with a relaxed δ ≤ 1 the same worker finishes
// instantly, latency 1.
func TestSingleWorkerSufficient(t *testing.T) {
	in := singleWorkerInstance()
	in.Epsilon = 0.7 // δ ≈ 0.71 < Acc* = 1
	ci := model.NewCandidateIndex(in)
	for _, factory := range map[string]OnlineFactory{
		"LAF": func(in *model.Instance, ci *model.CandidateIndex) Online { return NewLAF(in, ci) },
		"AAM": func(in *model.Instance, ci *model.CandidateIndex) Online { return NewAAM(in, ci) },
	} {
		res, err := RunOnline(in, ci, factory)
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency != 1 {
			t.Fatalf("latency = %d, want 1", res.Latency)
		}
	}
	res, err := RunOffline(in, ci, &MCFLTC{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 1 {
		t.Fatalf("MCF latency = %d, want 1", res.Latency)
	}
}

// TestCapacityExceedsTasks: K > |T| must not over-assign (each worker does
// each task at most once).
func TestCapacityExceedsTasks(t *testing.T) {
	in := &model.Instance{
		Epsilon: 0.2,
		K:       10, // K ≫ |T| = 2
		Model:   model.ConstantAccuracy{P: 0.95},
		MinAcc:  0.5,
	}
	in.Tasks = []model.Task{{ID: 0}, {ID: 1}}
	for w := 1; w <= 12; w++ {
		in.Workers = append(in.Workers, model.Worker{Index: w, Acc: 0.95})
	}
	ci := model.NewCandidateIndex(in)
	for name, run := range map[string]func() (*Result, error){
		"LAF": func() (*Result, error) {
			return RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online { return NewLAF(in, ci) })
		},
		"AAM": func() (*Result, error) {
			return RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online { return NewAAM(in, ci) })
		},
		"MCF": func() (*Result, error) { return RunOffline(in, ci, &MCFLTC{}) },
		"Off": func() (*Result, error) { return RunOffline(in, ci, BaseOff{}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Arrangement.Validate(in, true); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// δ(0.2) ≈ 3.22, Acc* = 0.81 → 4 workers per task; with K > |T|
		// every worker does both tasks, so latency 4.
		if res.Latency != 4 {
			t.Fatalf("%s: latency = %d, want 4", name, res.Latency)
		}
	}
}

// TestWorkerWithNoCandidates: workers far from every task must be skipped
// cleanly by all algorithms.
func TestWorkerWithNoCandidates(t *testing.T) {
	in := &model.Instance{
		Epsilon: 0.3,
		K:       2,
		Model:   model.SigmoidDistance{DMax: 30},
		MinAcc:  0.5,
	}
	in.Tasks = []model.Task{{ID: 0, Loc: geo.Point{X: 0, Y: 0}}}
	// Workers 1-3 are far away (no candidates); 4-9 are close.
	for w := 1; w <= 3; w++ {
		in.Workers = append(in.Workers, model.Worker{Index: w, Loc: geo.Point{X: 500, Y: 500}, Acc: 0.95})
	}
	for w := 4; w <= 9; w++ {
		in.Workers = append(in.Workers, model.Worker{Index: w, Loc: geo.Point{X: 1, Y: 1}, Acc: 0.95})
	}
	ci := model.NewCandidateIndex(in)
	res, err := RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online { return NewLAF(in, ci) })
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Arrangement.Pairs {
		if p.Worker <= 3 {
			t.Fatalf("far worker %d received an assignment", p.Worker)
		}
	}
	mcf, err := RunOffline(in, ci, &MCFLTC{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mcf.Arrangement.Validate(in, true); err != nil {
		t.Fatal(err)
	}
}

// TestMCFBatchLargerThanStream: the first batch formula can exceed |W|;
// the batch must clamp and the run still complete.
func TestMCFBatchLargerThanStream(t *testing.T) {
	rng := stats.NewRand(77)
	in := randomInstance(rng, 8, 60, 2, 0.2) // first batch ≈ 1.5·8·⌈3.22⌉/2 = 24 < 60, so shrink workers
	in.Workers = in.Workers[:30]
	ci := model.NewCandidateIndex(in)
	res, err := RunOffline(in, ci, &MCFLTC{})
	if err != nil && res == nil {
		t.Fatal(err)
	}
	if err == nil {
		if vErr := res.Arrangement.Validate(in, true); vErr != nil {
			t.Fatal(vErr)
		}
	}
}

// TestMCFTinyBatchMultiplier: a multiplier that collapses the batch to a
// single worker still yields valid (if slow) arrangements.
func TestMCFTinyBatchMultiplier(t *testing.T) {
	rng := stats.NewRand(88)
	in := randomInstance(rng, 3, 40, 2, 0.25)
	ci := model.NewCandidateIndex(in)
	res, err := RunOffline(in, ci, &MCFLTC{BatchMultiplier: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Arrangement.Validate(in, true); err != nil {
		t.Fatal(err)
	}
}

// TestOnlineArriveAfterDoneIsNoop: calling Arrive on a completed solver
// must assign nothing (the runners stop early, but the Session API or
// custom drivers may not).
func TestOnlineArriveAfterDoneIsNoop(t *testing.T) {
	rng := stats.NewRand(99)
	in := randomInstance(rng, 2, 30, 2, 0.3)
	ci := model.NewCandidateIndex(in)
	for _, algo := range []Online{NewLAF(in, ci), NewAAM(in, ci), NewRandom(in, ci, 3)} {
		for _, w := range in.Workers {
			if algo.Done() {
				break
			}
			algo.Arrive(w)
		}
		if !algo.Done() {
			t.Fatalf("%s did not complete", algo.Name())
		}
		if got := algo.Arrive(in.Workers[len(in.Workers)-1]); len(got) != 0 {
			t.Fatalf("%s assigned %v after Done", algo.Name(), got)
		}
	}
}

// TestBaseOffConsumesPointersConsistently: Base-off's remaining-supply
// bookkeeping must never go negative (each task's pointer advances exactly
// once per eligible arrival).
func TestBaseOffSupplyBookkeeping(t *testing.T) {
	rng := stats.NewRand(111)
	in := randomInstance(rng, 5, 80, 3, 0.2)
	ci := model.NewCandidateIndex(in)
	lists := ci.EligibleWorkerLists()
	// Total eligible pairs equals the sum of candidate counts over workers.
	var fromLists int
	for _, l := range lists {
		fromLists += len(l)
	}
	var fromCands int
	var buf []model.Candidate
	for _, w := range in.Workers {
		buf = ci.Candidates(w, buf[:0])
		fromCands += len(buf)
	}
	if fromLists != fromCands {
		t.Fatalf("eligible pair accounting mismatch: %d vs %d", fromLists, fromCands)
	}
}
