// Package fixture exercises the lockorder analyzer: the dispatch layer's
// lock classes in miniature — a registry RWMutex above indexed shard
// mutexes above a leaf event-bus mutex.
package fixture

import "sync"

type bus struct {
	//ltc:lock leaf
	mu sync.Mutex
}

func (b *bus) publish() {
	b.mu.Lock()
	b.mu.Unlock()
}

type shard struct {
	//ltc:lock shard[i]
	mu      sync.Mutex
	routed  int
	pending []int
}

type disp struct {
	//ltc:lock regMu
	regMu  sync.RWMutex
	shards []*shard
	b      *bus
}

// good takes the locks in declared order and publishes with none held.
func (d *disp) good(i int) {
	d.regMu.Lock()
	s := d.shards[i]
	s.mu.Lock()
	s.routed++
	s.mu.Unlock()
	d.regMu.Unlock()
	d.b.publish()
}

// deferredUnlock holds regMu via defer across a correctly nested shard lock.
func (d *disp) deferredUnlock(i int) {
	d.regMu.RLock()
	defer d.regMu.RUnlock()
	s := d.shards[i]
	s.mu.Lock()
	s.routed++
	s.mu.Unlock()
}

// inversion acquires the registry lock under a shard lock.
func (d *disp) inversion(i int) {
	s := d.shards[i]
	s.mu.Lock()
	d.regMu.RLock() // want "violates the lock order"
	d.regMu.RUnlock()
	s.mu.Unlock()
}

// leafUnderLock publishes while a shard lock is held — the transitive case:
// publish itself takes the leaf mutex.
func (d *disp) leafUnderLock(i int) {
	s := d.shards[i]
	s.mu.Lock()
	d.b.publish() // want "may acquire a leaf lock"
	s.mu.Unlock()
}

// leafDirect takes the bus mutex directly under a shard lock.
func (d *disp) leafDirect(i int) {
	s := d.shards[i]
	s.mu.Lock()
	d.b.mu.Lock() // want "leaf lock .* acquired while holding"
	d.b.mu.Unlock()
	s.mu.Unlock()
}

// doubleLock re-acquires a lock the function already holds.
func (d *disp) doubleLock(i int) {
	s := d.shards[i]
	s.mu.Lock()
	s.mu.Lock() // want "already held"
	s.mu.Unlock()
	s.mu.Unlock()
}

// pair nests two same-class shard locks without the ascending marker.
func (d *disp) pair(i, j int) {
	a, b := d.shards[i], d.shards[j]
	a.mu.Lock()
	b.mu.Lock() // want "ascending"
	b.mu.Unlock()
	a.mu.Unlock()
}

// pairAscending is the blessed two-shard pattern: the caller sorts the
// indices and marks the second acquisition.
func (d *disp) pairAscending(i, j int) {
	a, b := d.shards[i], d.shards[j]
	if j < i {
		a, b = b, a
	}
	a.mu.Lock()
	b.mu.Lock() //ltc:ascending
	b.mu.Unlock()
	a.mu.Unlock()
}

// branches exercises the flow walk: the lock is released on one path and
// held on the other, so the post-if publish is flagged.
func (d *disp) branches(i int, flip bool) {
	s := d.shards[i]
	s.mu.Lock()
	if flip {
		s.mu.Unlock()
		return
	}
	d.b.publish() // want "may acquire a leaf lock"
	s.mu.Unlock()
}

// goroutineStartsClean: a spawned goroutine does not inherit the spawner's
// held set, so publishing from it is fine even mid-critical-section.
func (d *disp) goroutineStartsClean(i int) {
	s := d.shards[i]
	s.mu.Lock()
	go func() {
		d.b.publish()
	}()
	s.mu.Unlock()
}

// waived demonstrates a reasoned waiver suppressing the diagnostic.
func (d *disp) waived(i int) {
	s := d.shards[i]
	s.mu.Lock()
	d.b.publish() //ltclint:ignore lockorder fixture demonstrates a reasoned waiver
	s.mu.Unlock()
}

type naked struct {
	mu sync.Mutex // want "no //ltc:lock annotation"
}
