package model

import (
	"math/rand/v2"
	"testing"

	"ltc/internal/geo"
)

// skewedSample draws a load profile with 70% of the mass inside one small
// hot disc and the rest uniform — the hotspot regime the balanced pack is
// for.
func skewedSample(n int, seed uint64) []geo.Point {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	pts := make([]geo.Point, n)
	for i := range pts {
		if rng.Float64() < 0.7 {
			pts[i] = geo.Point{X: 120 + rng.Float64()*40, Y: 300 + rng.Float64()*40}
		} else {
			pts[i] = geo.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		}
	}
	return pts
}

func TestBalancedPartitionInvariants(t *testing.T) {
	in := partitionInstance(300, 7)
	sample := skewedSample(4000, 9)
	for _, n := range []int{2, 4, 8, 16} {
		p, err := PartitionInstanceOpts(in, n, PartitionOptions{Balanced: true, LoadSample: sample})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Balanced {
			t.Fatalf("n=%d: Balanced flag not set", n)
		}
		if p.NumShards() < 1 || p.NumShards() > n {
			t.Fatalf("n=%d: got %d shards", n, p.NumShards())
		}
		// Every task appears exactly once, local order ascending in global
		// ID, parameters inherited — the striped invariants, balanced mode.
		seen := make([]int, len(in.Tasks))
		for si, sub := range p.Shards {
			if len(sub.In.Tasks) == 0 {
				t.Fatalf("n=%d: shard %d empty", n, si)
			}
			for local, task := range sub.In.Tasks {
				if int(task.ID) != local {
					t.Fatalf("n=%d shard %d: local IDs not consecutive", n, si)
				}
				gid := sub.Global[local]
				seen[gid]++
				if task.Loc != in.Tasks[gid].Loc {
					t.Fatalf("n=%d shard %d: task %d location drifted", n, si, gid)
				}
				if p.TaskShard(gid) != si {
					t.Fatalf("n=%d: TaskShard(%d) = %d, want %d", n, gid, p.TaskShard(gid), si)
				}
			}
			for i := 1; i < len(sub.Global); i++ {
				if sub.Global[i] <= sub.Global[i-1] {
					t.Fatalf("n=%d shard %d: global IDs not ascending", n, si)
				}
			}
			if sub.In.Epsilon != in.Epsilon || sub.In.K != in.K || sub.In.MinAcc != in.MinAcc {
				t.Fatalf("n=%d shard %d: parameters not inherited", n, si)
			}
		}
		for gid, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: task %d appears %d times", n, gid, c)
			}
		}
		// Shards are ordered by their smallest global TaskID.
		for si := 1; si < p.NumShards(); si++ {
			if p.Shards[si].Global[0] <= p.Shards[si-1].Global[0] {
				t.Fatalf("n=%d: shard order not ascending in min global ID", n)
			}
		}
		// A task's location routes to the shard owning it, and arbitrary
		// points route in range.
		for _, task := range in.Tasks {
			if got, want := p.Locate(task.Loc), p.TaskShard(task.ID); got != want {
				t.Fatalf("n=%d: task %d routed to %d, owned by %d", n, task.ID, got, want)
			}
		}
		rng := rand.New(rand.NewPCG(5, 6))
		for i := 0; i < 2000; i++ {
			q := geo.Point{X: rng.Float64()*2000 - 500, Y: rng.Float64()*2000 - 500}
			if s := p.Locate(q); s < 0 || s >= p.NumShards() {
				t.Fatalf("n=%d: Locate(%v) = %d out of range", n, q, s)
			}
		}
	}
}

// The whole point of the balanced pack: under a hotspot load profile the
// busiest shard must carry far less of the sampled traffic than under
// fixed striping.
func TestBalancedPartitionSplitsHotspot(t *testing.T) {
	// Tasks follow the same 70/30 hot-disc mixture as the traffic (the
	// hotspot scenario's regime: demand concentrates where workers do), so
	// the hot tiles hold tasks and are splittable units for the pack.
	in := &Instance{Epsilon: 0.1, K: 4, Model: SigmoidDistance{DMax: 30}, MinAcc: 0.5}
	for i, pt := range skewedSample(300, 7) {
		in.Tasks = append(in.Tasks, Task{ID: TaskID(i), Loc: pt})
	}
	sample := skewedSample(6000, 13)
	const n = 8
	maxShare := func(p *Partition) float64 {
		counts := make([]int, p.NumShards())
		for _, pt := range sample {
			counts[p.Locate(pt)]++
		}
		m := 0
		for _, c := range counts {
			if c > m {
				m = c
			}
		}
		return float64(m) * float64(p.NumShards()) / float64(len(sample))
	}
	striped, err := PartitionInstance(in, n)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := PartitionInstanceOpts(in, n, PartitionOptions{Balanced: true, LoadSample: sample})
	if err != nil {
		t.Fatal(err)
	}
	if striped.NumShards() != balanced.NumShards() {
		t.Logf("shard counts differ: striped %d, balanced %d", striped.NumShards(), balanced.NumShards())
	}
	s, b := maxShare(striped), maxShare(balanced)
	t.Logf("max shard share of sampled load (1.0 = perfect): striped %.2f, balanced %.2f", s, b)
	if b > 2 {
		t.Fatalf("balanced pack leaves max/mean load at %.2f, want ≤ 2", b)
	}
	if b > s*0.6 {
		t.Fatalf("balanced max share %.2f not well below striped %.2f", b, s)
	}
}

func TestBalancedPartitionWithoutSampleUsesTasks(t *testing.T) {
	// Tasks clustered 70/30 across two blobs; with no sample the pack
	// balances task counts across shards.
	in := &Instance{Epsilon: 0.1, K: 4, Model: SigmoidDistance{DMax: 30}, MinAcc: 0.5}
	rng := rand.New(rand.NewPCG(21, 43))
	for t := 0; t < 200; t++ {
		loc := geo.Point{X: 50 + rng.Float64()*30, Y: 50 + rng.Float64()*30}
		if t%10 >= 7 {
			loc = geo.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		}
		in.Tasks = append(in.Tasks, Task{ID: TaskID(t), Loc: loc})
	}
	p, err := PartitionInstanceOpts(in, 4, PartitionOptions{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	maxTasks := 0
	for _, sub := range p.Shards {
		if len(sub.In.Tasks) > maxTasks {
			maxTasks = len(sub.In.Tasks)
		}
	}
	fair := len(in.Tasks) / p.NumShards()
	if maxTasks > 2*fair {
		t.Fatalf("largest shard holds %d tasks, fair share %d", maxTasks, fair)
	}
}

func TestBalancedPartitionSingleShardKeepsSourceOrder(t *testing.T) {
	in := partitionInstance(50, 3)
	p, err := PartitionInstanceOpts(in, 1, PartitionOptions{Balanced: true, LoadSample: skewedSample(500, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if p.Balanced {
		t.Fatal("n=1 must keep the striped (identity) layout")
	}
	if p.NumShards() != 1 {
		t.Fatalf("shards = %d", p.NumShards())
	}
	for i := range in.Tasks {
		if p.Shards[0].Global[i] != TaskID(i) {
			t.Fatalf("identity mapping broken at %d", i)
		}
	}
}

func TestBalancedPartitionDegenerate(t *testing.T) {
	// All tasks at one point: one usable shard, Locate total.
	in := &Instance{Epsilon: 0.1, K: 2, Model: ConstantAccuracy{P: 0.9}}
	for t := 0; t < 5; t++ {
		in.Tasks = append(in.Tasks, Task{ID: TaskID(t), Loc: geo.Point{X: 3, Y: 3}})
	}
	p, err := PartitionInstanceOpts(in, 4, PartitionOptions{Balanced: true, LoadSample: skewedSample(100, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 1 || len(p.Shards[0].In.Tasks) != 5 {
		t.Fatalf("degenerate balanced partition: %d shards", p.NumShards())
	}
	if p.Balanced {
		t.Fatal("a pack collapsed to one shard must report Balanced = false (the layouts coincide)")
	}
	if p.Locate(geo.Point{X: -100, Y: 40}) != 0 {
		t.Fatal("degenerate Locate broken")
	}
	// A near-line rect (extreme aspect ratio, nonzero extent) must not blow
	// the fine tiling up into millions of cells — construction stays fast
	// and routing total.
	sliver := &Instance{Epsilon: 0.1, K: 2, Model: ConstantAccuracy{P: 0.9}}
	for t := 0; t < 64; t++ {
		sliver.Tasks = append(sliver.Tasks, Task{ID: TaskID(t), Loc: geo.Point{X: float64(t) * 1e4, Y: float64(t) * 1e-7}})
	}
	p, err = PartitionInstanceOpts(sliver, 16, PartitionOptions{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range sliver.Tasks {
		if got, want := p.Locate(task.Loc), p.TaskShard(task.ID); got != want {
			t.Fatalf("sliver task %d routed to %d, owned by %d", task.ID, got, want)
		}
	}
	// And the tall counterpart.
	tall := &Instance{Epsilon: 0.1, K: 2, Model: ConstantAccuracy{P: 0.9}}
	for t := 0; t < 64; t++ {
		tall.Tasks = append(tall.Tasks, Task{ID: TaskID(t), Loc: geo.Point{X: float64(t) * 1e-7, Y: float64(t) * 1e4}})
	}
	p, err = PartitionInstanceOpts(tall, 16, PartitionOptions{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tall.Tasks {
		if got, want := p.Locate(task.Loc), p.TaskShard(task.ID); got != want {
			t.Fatalf("tall task %d routed to %d, owned by %d", task.ID, got, want)
		}
	}
	// Tasks on a vertical line (zero-width rect): tiling degrades to one
	// column and the pack still balances down the line.
	line := &Instance{Epsilon: 0.1, K: 2, Model: ConstantAccuracy{P: 0.9}}
	for t := 0; t < 64; t++ {
		line.Tasks = append(line.Tasks, Task{ID: TaskID(t), Loc: geo.Point{X: 10, Y: float64(t)}})
	}
	p, err = PartitionInstanceOpts(line, 4, PartitionOptions{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() < 2 {
		t.Fatalf("line partition collapsed to %d shards", p.NumShards())
	}
	for _, task := range line.Tasks {
		if got, want := p.Locate(task.Loc), p.TaskShard(task.ID); got != want {
			t.Fatalf("line task %d routed to %d, owned by %d", task.ID, got, want)
		}
	}
	// Horizontal line too (zero-height rect).
	hline := &Instance{Epsilon: 0.1, K: 2, Model: ConstantAccuracy{P: 0.9}}
	for t := 0; t < 64; t++ {
		hline.Tasks = append(hline.Tasks, Task{ID: TaskID(t), Loc: geo.Point{X: float64(t), Y: 10}})
	}
	p, err = PartitionInstanceOpts(hline, 4, PartitionOptions{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() < 2 {
		t.Fatalf("hline partition collapsed to %d shards", p.NumShards())
	}
	// More shards than task tiles: capped, never empty.
	p, err = PartitionInstanceOpts(partitionInstance(3, 1), 64, PartitionOptions{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() > 3 {
		t.Fatalf("shards %d > tasks 3", p.NumShards())
	}
	// Bad input passes through the same validation as striping.
	if _, err := PartitionInstanceOpts(in, 0, PartitionOptions{Balanced: true}); err == nil {
		t.Fatal("shard count 0 accepted")
	}
	if _, err := PartitionInstanceOpts(&Instance{}, 2, PartitionOptions{Balanced: true}); err == nil {
		t.Fatal("empty instance accepted")
	}
}

func TestBalancedPartitionDeterministic(t *testing.T) {
	in := partitionInstance(300, 7)
	sample := skewedSample(2000, 3)
	a, err := PartitionInstanceOpts(in, 8, PartitionOptions{Balanced: true, LoadSample: sample})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionInstanceOpts(in, 8, PartitionOptions{Balanced: true, LoadSample: sample})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumShards() != b.NumShards() {
		t.Fatalf("shard counts differ: %d vs %d", a.NumShards(), b.NumShards())
	}
	for si := range a.Shards {
		ga, gb := a.Shards[si].Global, b.Shards[si].Global
		if len(ga) != len(gb) {
			t.Fatalf("shard %d sizes differ", si)
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("shard %d task %d differs: %d vs %d", si, i, ga[i], gb[i])
			}
		}
	}
}
