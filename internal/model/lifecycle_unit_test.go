package model

import (
	"errors"
	"testing"

	"ltc/internal/geo"
)

// TestCandidateIndexInsertRemoveErrors covers the lifecycle error paths and
// the Live/NumLive accessors.
func TestCandidateIndexInsertRemoveErrors(t *testing.T) {
	in := &Instance{
		Tasks:   []Task{{ID: 0, Loc: geo.Point{X: 1, Y: 1}}, {ID: 1, Loc: geo.Point{X: 5, Y: 5}}},
		Epsilon: 0.1, K: 2,
		Model:  SigmoidDistance{DMax: 30},
		MinAcc: 0.5,
	}
	ci := NewCandidateIndex(in)
	if ci.NumTasks() != 2 || ci.NumLive() != 2 {
		t.Fatalf("NumTasks %d NumLive %d", ci.NumTasks(), ci.NumLive())
	}
	if err := ci.Insert(Task{ID: 5, Loc: geo.Point{X: 2, Y: 2}}); !errors.Is(err, ErrTaskIDNotDense) {
		t.Fatalf("gapped insert: %v", err)
	}
	if err := ci.Remove(7); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown remove: %v", err)
	}
	if err := ci.Remove(-1); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("negative remove: %v", err)
	}
	if err := ci.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := ci.Remove(1); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("double remove: %v", err)
	}
	if ci.Live(1) || !ci.Live(0) || ci.Live(-1) || ci.Live(9) {
		t.Fatal("Live mask wrong")
	}
	if ci.NumLive() != 1 || ci.NumTasks() != 2 {
		t.Fatalf("after remove: NumLive %d NumTasks %d", ci.NumLive(), ci.NumTasks())
	}
}

// TestCandidateIndexZeroRadius: an accuracy model whose eligibility radius
// collapses to zero still builds a usable (1-unit-cell) grid.
func TestCandidateIndexZeroRadius(t *testing.T) {
	in := &Instance{
		Tasks:   []Task{{ID: 0, Loc: geo.Point{X: 3, Y: 3}}},
		Epsilon: 0.1, K: 1,
		// DMax 1 with a tight threshold: radius = 1 + ln(1/0.9 − 1) < 0 → 0.
		Model:  SigmoidDistance{DMax: 1},
		MinAcc: 0.9,
	}
	if r := (SigmoidDistance{DMax: 1}).EligibilityRadius(0.9); r != 0 {
		t.Fatalf("radius %v, want 0", r)
	}
	ci := NewCandidateIndex(in)
	if ci.Radius() != 0 {
		t.Fatalf("index radius %v", ci.Radius())
	}
	// A worker exactly on the task is the only possible candidate — and even
	// it fails the accuracy threshold here (p/2 < 0.9): no candidates, no
	// panic from a degenerate zero-size cell.
	if got := ci.Candidates(Worker{Index: 1, Loc: in.Tasks[0].Loc, Acc: 1}, nil); len(got) != 0 {
		t.Fatalf("candidates %v", got)
	}
}

// TestCheckFeasibleSkipsRemoved: an infeasible task stops blocking
// CheckFeasible once removed — expiring unservable tasks is exactly how a
// live platform restores feasibility.
func TestCheckFeasibleSkipsRemoved(t *testing.T) {
	in := &Instance{
		Tasks: []Task{
			{ID: 0, Loc: geo.Point{X: 1, Y: 1}},
			{ID: 1, Loc: geo.Point{X: 9000, Y: 9000}}, // no worker nearby: infeasible
		},
		Workers: []Worker{{Index: 1, Loc: geo.Point{X: 1, Y: 2}, Acc: 0.95}},
		Epsilon: 0.9, // tiny δ so one strong worker suffices
		K:       1,
		Model:   SigmoidDistance{DMax: 30},
		MinAcc:  0.5,
	}
	ci := NewCandidateIndex(in)
	if err := ci.CheckFeasible(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("feasible with an unreachable task: %v", err)
	}
	if err := ci.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := ci.CheckFeasible(); err != nil {
		t.Fatalf("infeasible after removing the unreachable task: %v", err)
	}
}

// TestArrangementEnsureTasks covers the dynamic credit-table growth.
func TestArrangementEnsureTasks(t *testing.T) {
	a := NewArrangement(2)
	a.Add(1, 0, 0.5)
	a.EnsureTasks(4)
	if len(a.Accumulated) != 4 || a.Accumulated[0] != 0.5 {
		t.Fatalf("after grow: %v", a.Accumulated)
	}
	a.EnsureTasks(2) // never shrinks
	if len(a.Accumulated) != 4 {
		t.Fatalf("shrunk to %d", len(a.Accumulated))
	}
	a.Add(3, 3, 0.25)
	if a.Accumulated[3] != 0.25 || a.Latency() != 3 {
		t.Fatalf("post-grow add broken: %v latency %d", a.Accumulated, a.Latency())
	}
}

// TestSubInstanceAppendTask: growth keeps local IDs dense, the global
// mapping aligned, and ID-sensitive models resolving appended tasks through
// their source identity.
func TestSubInstanceAppendTask(t *testing.T) {
	in := partitionInstance(30, 19)
	vals := make([][]float64, 40) // room for appended global IDs
	for tid := range vals {
		row := make([]float64, 8)
		for wi := range row {
			row[wi] = float64(tid*8+wi+1) / 1000
		}
		vals[tid] = row
	}
	in.Model = MatrixAccuracy{Vals: vals}
	p, err := PartitionInstance(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	sub := p.Shards[0]
	before := len(sub.In.Tasks)
	global := Task{ID: TaskID(len(in.Tasks)), Loc: geo.Point{X: 7, Y: 7}}
	local := sub.AppendTask(global)
	if int(local.ID) != before || local.Loc != global.Loc {
		t.Fatalf("local task %+v", local)
	}
	if len(sub.In.Tasks) != before+1 || len(sub.Global) != before+1 {
		t.Fatal("sub-instance slices out of step")
	}
	if sub.Global[local.ID] != global.ID {
		t.Fatalf("global mapping %d, want %d", sub.Global[local.ID], global.ID)
	}
	if got := sub.SourceTask(local.ID); got != global {
		t.Fatalf("SourceTask %+v, want %+v", got, global)
	}
	// The wrapped model must key off the appended task's *global* ID.
	w := Worker{Index: 3, Acc: 0.9}
	if got, want := sub.In.Model.Predict(w, local), in.Model.Predict(w, global); got != want {
		t.Fatalf("Predict %v, want %v", got, want)
	}
}
