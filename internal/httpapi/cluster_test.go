package httpapi

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ltc"
	"ltc/internal/cluster"
	"ltc/internal/geo"
)

// goldenSeed mirrors the golden-trace suite's seed (drives RandomAssign).
const goldenSeed = 7

// clusterFixture is a booted in-process cluster: one ClusterServer per
// topology node behind httptest, and a routing client over them.
type clusterFixture struct {
	in    *ltc.Instance
	topo  *cluster.Topology
	split *cluster.Split
	plats []*ltc.Platform // nil for nodes owning no tasks
	urls  []string
	cc    *ClusterClient
}

func newCluster(t *testing.T, in *ltc.Instance, nodes, shards int, algo ltc.Algorithm, seed uint64) *clusterFixture {
	t.Helper()
	topo, err := cluster.Build(in, nodes)
	if err != nil {
		t.Fatal(err)
	}
	split, err := cluster.SplitInstance(in, topo)
	if err != nil {
		t.Fatal(err)
	}
	f := &clusterFixture{in: in, topo: topo, split: split}
	for n := 0; n < nodes; n++ {
		var plat *ltc.Platform
		if sub := split.Subs[n]; sub != nil {
			plat, err = ltc.NewPlatform(sub.In, algo, ltc.WithShards(shards), ltc.WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = plat.Close() })
		}
		cs, err := NewClusterServer(plat, algo, shards, topo, n, split)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cs.Close)
		srv := httptest.NewServer(cs.Handler())
		t.Cleanup(srv.Close)
		f.plats = append(f.plats, plat)
		f.urls = append(f.urls, srv.URL)
	}
	f.cc, err = NewClusterClient(f.urls, topo)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// tableIV regenerates a Table IV preset workload.
func tableIV(t *testing.T, scale float64, seed uint64) *ltc.Instance {
	t.Helper()
	cfg := ltc.DefaultWorkload().Scale(scale)
	cfg.Seed = seed
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestClusterGoldenSingleNode is the acceptance gate for routing
// transparency: a single-node topology replayed through the full cluster
// stack — routing client → HTTP → cluster server → platform, with global
// task-ID translation in every receipt — must reproduce the recorded golden
// traces byte for byte, per-call and batched.
func TestClusterGoldenSingleNode(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() ltc.WorkloadConfig
	}{
		{"tableiv-default-x001", func() ltc.WorkloadConfig {
			return ltc.DefaultWorkload().Scale(0.01)
		}},
		{"tableiv-k4-eps014-x001", func() ltc.WorkloadConfig {
			c := ltc.DefaultWorkload().Scale(0.01)
			c.K = 4
			c.Epsilon = 0.14
			c.Seed = 2
			return c
		}},
		{"tableiv-uniform-x001", func() ltc.WorkloadConfig {
			c := ltc.DefaultWorkload().Scale(0.01)
			c.Accuracy = ltc.AccuracyDist{Kind: ltc.DistUniform, Mean: 0.86, Spread: 0.10}
			c.Seed = 3
			return c
		}},
	}
	for _, gc := range cases {
		in, err := gc.cfg().Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []ltc.Algorithm{ltc.LAF, ltc.AAM, ltc.RandomAssign} {
			t.Run(fmt.Sprintf("%s-%s", gc.name, algo), func(t *testing.T) {
				path := filepath.Join("..", "..", "testdata", "golden", fmt.Sprintf("%s-%s.trace", gc.name, algo))
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden fixture: %v", err)
				}
				f := newCluster(t, in, 1, 1, algo, goldenSeed)
				if err := f.syncNow(t); err != nil {
					t.Fatal(err)
				}
				got := f.wireTrace(t, gc.name, algo, 0)
				if !bytes.Equal(want, []byte(got)) {
					t.Errorf("per-call cluster trace diverged from %s\n%s", path, firstDiff(want, []byte(got)))
				}
				// The batched path must agree too (fresh cluster — the first
				// run consumed the platform).
				fb := newCluster(t, in, 1, 1, algo, goldenSeed)
				got = fb.wireTrace(t, gc.name, algo, 7)
				if !bytes.Equal(want, []byte(got)) {
					t.Errorf("batched cluster trace diverged from %s\n%s", path, firstDiff(want, []byte(got)))
				}
			})
		}
	}
}

func (f *clusterFixture) syncNow(t *testing.T) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := f.cc.Sync(ctx)
	return err
}

// wireTrace renders the canonical golden trace text by feeding the worker
// stream through the cluster client (per-call, or batched when batch > 1).
// Completion, latency and credits come from the in-process platform handle
// — on a single-node topology local and global task IDs coincide, so the
// wire receipts' translated IDs must match the recorded local ones exactly.
func (f *clusterFixture) wireTrace(t *testing.T, name string, algo ltc.Algorithm, batch int) string {
	t.Helper()
	plat := f.plats[0]
	var b bytes.Buffer
	fmt.Fprintf(&b, "# ltc golden trace\n")
	fmt.Fprintf(&b, "workload=%s algo=%s seed=%d\n", name, algo, goldenSeed)
	fmt.Fprintf(&b, "tasks=%d workers=%d k=%d epsilon=%s delta=%s\n",
		len(f.in.Tasks), len(f.in.Workers), f.in.K,
		strconv.FormatFloat(f.in.Epsilon, 'g', -1, 64),
		strconv.FormatFloat(f.in.Delta(), 'x', -1, 64))
	writeArrival := func(rec Receipt) {
		fmt.Fprintf(&b, "arrival %d:", rec.Worker)
		if len(rec.Assignments) == 0 {
			b.WriteString(" -")
		}
		for i, g := range rec.Assignments {
			if i > 0 {
				b.WriteByte(',')
			} else {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", g.Task)
		}
		b.WriteByte('\n')
	}
	if batch > 1 {
		for i := 0; i < len(f.in.Workers) && !plat.Done(); i += batch {
			j := min(i+batch, len(f.in.Workers))
			chunk := make([]Worker, j-i)
			for k, w := range f.in.Workers[i:j] {
				chunk[k] = FromWorker(w)
			}
			recs, _, err := f.cc.CheckInBatch(chunk)
			if err != nil {
				t.Fatalf("batch at worker %d: %v", i, err)
			}
			for _, rec := range recs {
				writeArrival(rec)
			}
		}
	} else {
		for _, w := range f.in.Workers {
			if plat.Done() {
				break
			}
			rec, err := f.cc.CheckIn(FromWorker(w))
			if err != nil {
				t.Fatalf("worker %d: %v", w.Index, err)
			}
			if rec.Worker != w.Index {
				t.Fatalf("receipt echoes worker %d, fed %d", rec.Worker, w.Index)
			}
			writeArrival(rec)
		}
	}
	fmt.Fprintf(&b, "done=%t latency=%d\n", plat.Done(), plat.Latency())
	for tid, c := range plat.Credits(nil) {
		fmt.Fprintf(&b, "credit %d: %s\n", tid, strconv.FormatFloat(c, 'x', -1, 64))
	}
	return b.String()
}

func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < min(len(wl), len(gl)); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}

// TestClusterEndToEndThreeNode drives a 3-node cluster through the full
// audit the CI smoke job runs at the wire level: fingerprint-checked sync,
// a sequential feed to completion, the folded stats agreeing with an
// in-process per-node reference replay, and the merged event stream
// delivering exactly one task_completed per global task plus one
// platform_done per task-owning node, in one gapless cluster sequence.
func TestClusterEndToEndThreeNode(t *testing.T) {
	const (
		seed   = 42
		shards = 2
	)
	in := tableIV(t, 0.01, seed) // 30 tasks, 400 workers
	f := newCluster(t, in, 3, shards, ltc.AAM, seed)
	if err := f.syncNow(t); err != nil {
		t.Fatal(err)
	}

	// Reference replay: the same stream through in-process platforms, split
	// by the same routing.
	refs := make([]*ltc.Platform, f.topo.Nodes)
	for n, sub := range f.split.Subs {
		if sub == nil {
			continue
		}
		ref, err := ltc.NewPlatform(sub.In, ltc.AAM, ltc.WithShards(shards), ltc.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = ref.Close() }()
		refs[n] = ref
	}
	refsDone := func() bool {
		for _, ref := range refs {
			if ref != nil && !ref.Done() {
				return false
			}
		}
		return true
	}

	var fed int
	for _, w := range in.Workers {
		if f.cc.Complete() {
			break
		}
		rec, err := f.cc.CheckIn(FromWorker(w))
		if err != nil {
			t.Fatalf("worker %d: %v", w.Index, err)
		}
		if rec.Worker != w.Index {
			t.Fatalf("receipt echoes worker %d, fed %d", rec.Worker, w.Index)
		}
		fed++
		// Mirror on the reference: same stop rule, same routing, bounces and
		// all — the wire must be invisible.
		if _, err := refs[f.topo.NodeFor(w.Loc)].CheckIn(w); err != nil && !errors.Is(err, ltc.ErrPlatformDone) {
			t.Fatal(err)
		}
	}
	if !refsDone() {
		t.Fatal("reference replay incomplete")
	}

	st, err := f.cc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Resolved != st.Total || st.Total != len(in.Tasks) {
		t.Fatalf("cluster incomplete: %+v", st)
	}
	if st.WorkersSeen != fed {
		t.Fatalf("summed workers_seen %d != %d fed", st.WorkersSeen, fed)
	}
	wantLatency := 0
	for n, ref := range refs {
		if ref == nil {
			continue
		}
		if ref.Latency() != st.Nodes[n].Latency {
			t.Fatalf("node %d latency: wire %d, reference %d", n, st.Nodes[n].Latency, ref.Latency())
		}
		if ref.WorkersSeen() != st.Nodes[n].WorkersSeen {
			t.Fatalf("node %d workers_seen: wire %d, reference %d", n, st.Nodes[n].WorkersSeen, ref.WorkersSeen())
		}
		wantLatency = max(wantLatency, ref.Latency())
	}
	if st.Latency != wantLatency {
		t.Fatalf("cluster latency fold %d != reference max %d", st.Latency, wantLatency)
	}

	// Merged event audit. Nodes record their log from boot, so subscribing
	// after the run replays everything; the merger enforces gaplessness.
	taskNodes := 0
	for _, sub := range f.split.Subs {
		if sub != nil {
			taskNodes++
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	stream := f.cc.OpenClusterEvents(ctx)
	defer stream.Close()
	completions := make(map[int]int)
	platformDone := 0
	var lastSeq uint64
	for platformDone < taskNodes || len(completions) < len(in.Tasks) {
		e, err := stream.Next()
		if err != nil {
			t.Fatalf("merged stream ended early (%v): %d/%d completions, %d/%d platform_done",
				err, len(completions), len(in.Tasks), platformDone, taskNodes)
		}
		if e.ClusterSeq != lastSeq+1 {
			t.Fatalf("cluster sequence not dense: %d after %d", e.ClusterSeq, lastSeq)
		}
		lastSeq = e.ClusterSeq
		switch e.Kind {
		case "task_completed":
			if e.Task < 0 || e.Task >= len(in.Tasks) {
				t.Fatalf("completion for out-of-range global task %d", e.Task)
			}
			if completions[e.Task]++; completions[e.Task] > 1 {
				t.Fatalf("task %d completed twice on the merged stream", e.Task)
			}
		case "platform_done":
			platformDone++
		}
	}
}

// TestClusterRedirectSelfHeal boots a 2-node cluster and routes through a
// client whose tile table is deliberately wrong for every tile: each
// operation first hits the wrong node, receives the typed 421 redirect, and
// self-heals. The full stream must still complete, and direct misrouted
// calls must surface RedirectError with the true owner.
func TestClusterRedirectSelfHeal(t *testing.T) {
	in := tableIV(t, 0.01, 42)
	f := newCluster(t, in, 2, 1, ltc.AAM, 42)

	// Direct single check-in to the wrong node: typed redirect, Index -1.
	var probe ltc.Worker
	found := false
	for _, w := range in.Workers {
		if f.topo.NodeFor(w.Loc) == 1 {
			probe, found = w, true
			break
		}
	}
	if !found {
		t.Fatal("no worker routes to node 1")
	}
	_, err := f.cc.Node(0).CheckIn(FromWorker(probe))
	var re *RedirectError
	if !errors.As(err, &re) || re.Owner != 1 || re.Index != -1 {
		t.Fatalf("misrouted check-in: got %v, want RedirectError{Owner: 1, Index: -1}", err)
	}

	// Direct misrouted batch: the redirect names the offending offset and
	// nothing is ingested (all-or-nothing ownership).
	var batch []Worker
	for _, w := range in.Workers {
		if f.topo.NodeFor(w.Loc) == 0 && len(batch) < 2 {
			batch = append(batch, FromWorker(w))
		}
	}
	batch = append(batch, FromWorker(probe))
	_, _, err = f.cc.Node(0).CheckInBatch(batch)
	if !errors.As(err, &re) || re.Owner != 1 || re.Index != len(batch)-1 {
		t.Fatalf("misrouted batch: got %v, want RedirectError{Owner: 1, Index: %d}", err, len(batch)-1)
	}
	st, err := f.cc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkersSeen != 0 {
		t.Fatalf("redirected requests ingested %d workers", st.WorkersSeen)
	}

	// A client with an entirely wrong table: every owner rotated. Each first
	// contact per tile redirects once, heals, and the run still completes.
	bad := *f.topo
	bad.TileNode = make([]int, len(f.topo.TileNode))
	for i, n := range f.topo.TileNode {
		bad.TileNode[i] = (n + 1) % f.topo.Nodes
	}
	cc, err := NewClusterClient(f.urls, &bad)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range in.Workers {
		if cc.Complete() {
			break
		}
		rec, err := cc.CheckIn(FromWorker(w))
		if err != nil {
			t.Fatalf("worker %d through stale table: %v", w.Index, err)
		}
		if rec.Worker != w.Index {
			t.Fatalf("receipt echoes worker %d, fed %d", rec.Worker, w.Index)
		}
	}
	final, err := cc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done || final.Resolved != len(in.Tasks) {
		t.Fatalf("self-healed run incomplete: %+v", final)
	}
}

// TestClusterPostRetire pins cluster-global task-ID translation for the
// dynamic lifecycle: posted tasks get owner-recoverable IDs from the
// node-interleaved progression, events carry the global ID, and retires
// route by ID arithmetic (posted) or redirect-following (initial, unsynced
// client).
func TestClusterPostRetire(t *testing.T) {
	in := tableIV(t, 0.01, 42)
	f := newCluster(t, in, 2, 1, ltc.AAM, 42)
	if err := f.syncNow(t); err != nil {
		t.Fatal(err)
	}

	// Post at a location owned by node 1: the ID must come from node 1's
	// progression and be invertible without any lookup.
	var loc geo.Point
	found := false
	for _, task := range in.Tasks {
		if f.topo.NodeFor(task.Loc) == 1 {
			loc, found = task.Loc, true
			break
		}
	}
	if !found {
		t.Fatal("no task owned by node 1")
	}
	id, err := f.cc.PostTask(loc.X, loc.Y)
	if err != nil {
		t.Fatal(err)
	}
	if id < f.topo.TotalTasks {
		t.Fatalf("posted ID %d inside the initial range", id)
	}
	if n, k, err := f.topo.PostedOwner(id); err != nil || n != 1 || k != 0 {
		t.Fatalf("PostedOwner(%d) = (%d, %d, %v), want (1, 0)", id, n, k, err)
	}

	// The node's event log carries the translated global ID.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stream := f.cc.OpenClusterEvents(ctx)
	defer stream.Close()
	for {
		e, err := stream.Next()
		if err != nil {
			t.Fatalf("merged stream: %v", err)
		}
		if e.Kind == "task_posted" {
			if e.Task != id || e.Node != 1 {
				t.Fatalf("task_posted carried (task %d, node %d), want (%d, 1)", e.Task, e.Node, id)
			}
			break
		}
	}

	if err := f.cc.RetireTask(id); err != nil {
		t.Fatalf("retire posted task: %v", err)
	}
	// Retiring an ID the arithmetic assigns to node 0 that node 0 never
	// posted is a plain 404, not a redirect.
	if err := f.cc.RetireTask(f.topo.PostedGlobalID(0, 99)); err == nil || errors.As(err, new(*RedirectError)) {
		t.Fatalf("unknown posted ID: got %v, want a plain not-found error", err)
	}

	// An unsynced client retires an initial task by redirect-following.
	fresh, err := NewClusterClient(f.urls, f.topo)
	if err != nil {
		t.Fatal(err)
	}
	var initial int
	for gid := range in.Tasks {
		if int(f.split.OwnerOf[gid]) == 1 {
			initial = gid
			break
		}
	}
	if err := fresh.RetireTask(initial); err != nil {
		t.Fatalf("retire initial task %d unsynced: %v", initial, err)
	}
}

// TestClusterZeroTileNode: a topology can assign a node no tiles at all
// (fewer task tiles than nodes). Such a node must boot platform-less, serve
// trivially-done stats, redirect everything, stream no events — and the
// cluster as a whole must still complete with exactly one platform_done.
func TestClusterZeroTileNode(t *testing.T) {
	in := &ltc.Instance{Epsilon: 0.1, K: 2, Model: ltc.SigmoidDistance{DMax: 30}}
	for i := 0; i < 3; i++ {
		in.Tasks = append(in.Tasks, ltc.Task{ID: ltc.TaskID(i), Loc: geo.Point{X: 5, Y: 5}})
	}
	for i := 1; i <= 60; i++ {
		in.Workers = append(in.Workers, ltc.Worker{Index: i, Loc: geo.Point{X: 5, Y: 5}, Acc: 0.95})
	}
	f := newCluster(t, in, 3, 1, ltc.AAM, 1)
	if f.plats[1] != nil || f.plats[2] != nil {
		t.Fatal("zero-tile nodes must boot without a platform")
	}
	if err := f.syncNow(t); err != nil {
		t.Fatal(err)
	}

	// The empty node reports trivially-done stats and owns nothing.
	st1, err := f.cc.Node(1).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st1.Done || st1.Tasks != 0 || st1.WorkersSeen != 0 {
		t.Fatalf("zero-tile node stats: %+v", st1)
	}
	var info ClusterInfo
	if err := f.cc.Node(1).doJSON(http.MethodGet, "/cluster/info", nil, &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Tasks) != 0 || info.Node != 1 {
		t.Fatalf("zero-tile node info: %+v", info)
	}

	// Everything it receives redirects to the single tile owner.
	var re *RedirectError
	if _, err := f.cc.Node(1).CheckIn(FromWorker(in.Workers[0])); !errors.As(err, &re) || re.Owner != 0 {
		t.Fatalf("zero-tile check-in: got %v, want redirect to node 0", err)
	}
	if _, err := f.cc.Node(1).PostTask(5, 5); !errors.As(err, &re) || re.Owner != 0 {
		t.Fatalf("zero-tile post: got %v, want redirect to node 0", err)
	}
	// A posted-range ID arithmetically owned by the empty node is a 404 —
	// the node never posted anything.
	if err := f.cc.RetireTask(f.topo.PostedGlobalID(1, 0)); err == nil || errors.As(err, &re) {
		t.Fatalf("retire on empty node: got %v, want a plain not-found error", err)
	}

	// The cluster still completes, with exactly one platform_done.
	for _, w := range in.Workers {
		if f.cc.Complete() {
			break
		}
		if _, err := f.cc.CheckIn(FromWorker(w)); err != nil {
			t.Fatal(err)
		}
	}
	if !f.cc.Complete() {
		t.Fatal("cluster did not complete")
	}
	fold, err := f.cc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !fold.Done || fold.Resolved != 3 || fold.Total != 3 {
		t.Fatalf("folded stats: %+v", fold)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stream := f.cc.OpenClusterEvents(ctx)
	defer stream.Close()
	completions, platformDone := 0, 0
	for platformDone < 1 || completions < 3 {
		e, err := stream.Next()
		if err != nil {
			t.Fatalf("merged stream: %v (%d completions, %d platform_done)", err, completions, platformDone)
		}
		if e.Node != 0 {
			t.Fatalf("event from node %d, only node 0 owns tasks", e.Node)
		}
		switch e.Kind {
		case "task_completed":
			completions++
		case "platform_done":
			platformDone++
		}
	}
}

// TestClusterEventLogResume pins the ?since= contract: the node's recorded
// log replays from any per-node sequence number, so a reconnecting
// subscriber resumes exactly where it folded off.
func TestClusterEventLogResume(t *testing.T) {
	in := tableIV(t, 0.01, 42)
	f := newCluster(t, in, 1, 1, ltc.AAM, 42)
	for _, w := range in.Workers {
		if f.plats[0].Done() {
			break
		}
		if _, err := f.cc.CheckIn(FromWorker(w)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Count the full log first.
	full, err := f.cc.Node(0).OpenEventsSince(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = full.Close() }()
	total := uint64(0)
	for {
		e, err := full.Next()
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != total+1 {
			t.Fatalf("log replay not dense: seq %d after %d", e.Seq, total)
		}
		total = e.Seq
		if e.Kind == "platform_done" {
			break
		}
	}
	if total < 3 {
		t.Fatalf("log too short to test resume: %d events", total)
	}
	// Resume mid-log: the first replayed event is exactly since+1.
	resume, err := f.cc.Node(0).OpenEventsSince(ctx, total/2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resume.Close() }()
	e, err := resume.Next()
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != total/2+1 {
		t.Fatalf("resume at %d delivered seq %d, want %d", total/2, e.Seq, total/2+1)
	}
	// Malformed since is a 400, not a stream.
	resp, err := http.Get(f.urls[0] + "/events?since=nope")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestClusterEventLogCorrupt: an overrun recorder truncates the log; open
// streams drain the intact prefix and then terminate instead of serving a
// gapped sequence (the merger would reject it as ErrSeqGap anyway).
func TestClusterEventLogCorrupt(t *testing.T) {
	log := newEventLog()
	log.append(Event{Seq: 1, Kind: "task_completed", Task: 0})
	log.markCorrupt()
	if e, wait, corrupt := log.at(0); wait != nil || corrupt || e.Seq != 1 {
		t.Fatalf("intact prefix must stay readable: (%+v, %v, %v)", e, wait, corrupt)
	}
	if _, wait, corrupt := log.at(1); wait != nil || !corrupt {
		t.Fatal("exhausted corrupt log must report corruption, not block")
	}
	// Appends after the mark still surface before the corruption signal.
	log.append(Event{Seq: 3, Kind: "platform_done", Task: -1})
	if e, _, _ := log.at(1); e.Seq != 3 {
		t.Fatalf("post-corruption append unreadable: %+v", e)
	}
}

// TestWaitReadyBackoff: the readiness probe retries through transient
// failures with the capped jittered schedule and honours cancellation.
func TestWaitReadyBackoff(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "booting", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, Stats{})
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL, HTTP: srv.Client()}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n < 3 {
		t.Fatalf("probe succeeded after %d calls, want ≥ 3", n)
	}

	// A dead endpoint: WaitReady must return the context's error promptly,
	// wrapping the last probe failure.
	dead := &Client{Base: "http://127.0.0.1:1"}
	shortCtx, cancelShort := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancelShort()
	if err := dead.WaitReady(shortCtx); err == nil || !strings.Contains(err.Error(), "not ready") {
		t.Fatalf("dead endpoint: got %v", err)
	}

	// The schedule: exponential from 25ms, capped at 1s, jittered ±25%.
	for attempt := 0; attempt < 12; attempt++ {
		base := min(25*time.Millisecond<<uint(min(attempt, 6)), time.Second)
		d := backoffDelay(attempt)
		if d < time.Duration(float64(base)*0.75) || d > time.Duration(float64(base)*1.25) {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d,
				time.Duration(float64(base)*0.75), time.Duration(float64(base)*1.25))
		}
	}
}

// TestClusterClientValidation covers construction and sync failure modes:
// URL/topology arity, shuffled node URLs, and fingerprint mismatches.
func TestClusterClientValidation(t *testing.T) {
	in := tableIV(t, 0.01, 42)
	f := newCluster(t, in, 2, 1, ltc.AAM, 42)
	if _, err := NewClusterClient(f.urls[:1], f.topo); err == nil {
		t.Fatal("URL/topology arity mismatch must fail")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Shuffled URLs: node identity check fails.
	swapped, err := NewClusterClient([]string{f.urls[1], f.urls[0]}, f.topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := swapped.Sync(ctx); err == nil || !strings.Contains(err.Error(), "shuffled") {
		t.Fatalf("shuffled URLs: got %v", err)
	}

	// A topology with a different fingerprint (different workload flags).
	other := tableIV(t, 0.02, 42)
	otherTopo, err := cluster.Build(other, 2)
	if err != nil {
		t.Fatal(err)
	}
	mismatched, err := NewClusterClient(f.urls, otherTopo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mismatched.Sync(ctx); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint mismatch: got %v", err)
	}
}

// TestClusterStreamReconnect: killing a node's connections mid-stream must
// not break the merged sequence — the supervisor reconnects with ?since=
// and the fold continues without gaps or duplicates.
func TestClusterStreamReconnect(t *testing.T) {
	in := tableIV(t, 0.01, 42)
	topo, err := cluster.Build(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	split, err := cluster.SplitInstance(in, topo)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := ltc.NewPlatform(split.Subs[0].In, ltc.AAM, ltc.WithShards(1), ltc.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = plat.Close() }()
	cs, err := NewClusterServer(plat, ltc.AAM, 1, topo, 0, split)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	srv := httptest.NewServer(cs.Handler())
	defer srv.Close()
	cc, err := NewClusterClient([]string{srv.URL}, topo)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	stream := cc.OpenClusterEvents(ctx)
	defer stream.Close()

	// Feed half the stream, drop every open connection, feed the rest: the
	// subscriber must still see one dense cluster sequence covering every
	// completion exactly once.
	half := len(in.Workers) / 2
	feed := func(ws []ltc.Worker) {
		for _, w := range ws {
			if plat.Done() {
				return
			}
			if _, err := cc.CheckIn(FromWorker(w)); err != nil {
				t.Fatalf("worker %d: %v", w.Index, err)
			}
		}
	}
	feed(in.Workers[:half])
	srv.CloseClientConnections()
	feed(in.Workers[half:])
	if !plat.Done() {
		t.Fatal("platform incomplete")
	}

	completions := make(map[int]int)
	var lastSeq uint64
	for {
		e, err := stream.Next()
		if err != nil {
			t.Fatalf("merged stream: %v", err)
		}
		if e.ClusterSeq != lastSeq+1 {
			t.Fatalf("cluster sequence not dense across reconnect: %d after %d", e.ClusterSeq, lastSeq)
		}
		lastSeq = e.ClusterSeq
		if e.Kind == "task_completed" {
			if completions[e.Task]++; completions[e.Task] > 1 {
				t.Fatalf("task %d delivered twice across reconnect", e.Task)
			}
		}
		if e.Kind == "platform_done" {
			break
		}
	}
	if len(completions) != len(in.Tasks) {
		t.Fatalf("%d/%d completions across reconnect", len(completions), len(in.Tasks))
	}
}
