// Cluster tier, node side: a ClusterServer wraps one node's Platform (the
// sub-instance of the global task set its topology tiles assign it) in the
// same HTTP surface as a plain gateway, plus the cluster-specific contract:
//
//   - ownership checks — a check-in, post or retire whose owner is another
//     node is rejected with HTTP 421 (Misdirected Request) and a JSON body
//     naming the owner, which clients use to self-heal a stale routing
//     table (see RedirectError);
//   - task-ID translation — the wire speaks cluster-global IDs everywhere
//     (receipts, events, /tasks, DELETE /tasks/{id}); the node's platform
//     only ever sees its dense local IDs;
//   - a replayable event log — GET /events?since=N resumes a node stream
//     after the N-th event, so a reconnecting cluster subscriber can
//     preserve the exactly-once audit across connection loss;
//   - GET /cluster/info — the node's identity, its owned initial tasks and
//     the topology fingerprint, letting clients verify the cluster matches
//     the workload flags they generated from before any traffic flows.
//
// See CONCURRENCY.md, "Cluster tier".
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"ltc"
	"ltc/internal/cluster"
	"ltc/internal/geo"
)

// RedirectError is the typed client-side form of an HTTP 421 response: the
// request reached a node that does not own the task or tile it concerns.
// Owner is the node that does; clients heal their routing table with it and
// retry. Index is the offset of the first misrouted worker inside a batch
// (-1 for single-object requests), so batch clients can re-split from the
// exact worker that routed wrong.
type RedirectError struct {
	Owner int
	Index int
	Msg   string
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("httpapi: misdirected request, owner is node %d: %s", e.Owner, e.Msg)
}

// redirectBody is the JSON body of an HTTP 421 response.
type redirectBody struct {
	Error string `json:"error"`
	Owner int    `json:"owner"`
	Index int    `json:"index"`
}

func writeRedirect(w http.ResponseWriter, owner, index int, msg string) {
	writeJSON(w, http.StatusMisdirectedRequest, redirectBody{Error: msg, Owner: owner, Index: index})
}

// ClusterInfo is GET /cluster/info's result. Tasks lists the cluster-global
// IDs of the initial tasks this node owns (empty for a node owning no
// tiles); Fingerprint ties the node's routing table to the exact tiling, so
// a client can detect mismatched workload flags before any traffic flows.
type ClusterInfo struct {
	Node        int    `json:"node"`
	Nodes       int    `json:"nodes"`
	TotalTasks  int    `json:"total_tasks"`
	Fingerprint string `json:"fingerprint"`
	Tasks       []int  `json:"tasks"`
}

// NodeStats is a cluster node's GET /stats result: the plain Stats snapshot
// plus the node's identity, so folded cluster stats stay attributable.
type NodeStats struct {
	Stats
	Node         int `json:"node"`
	ClusterNodes int `json:"cluster_nodes"`
}

// ClusterServer serves one cluster node: the plain gateway surface with
// ownership enforcement, global↔local task-ID translation and a replayable
// event log. Construct with NewClusterServer, serve Handler(), and Close
// when done (it detaches the event recorder from the platform).
type ClusterServer struct {
	topo      *cluster.Topology
	node      int
	p         *ltc.Platform // nil when the node owns no tiles (and no tasks)
	algo      string
	requested int
	global    []ltc.TaskID       // local → cluster-global, initial tasks
	localOf   map[int]ltc.TaskID // cluster-global → local, initial tasks
	ownerOf   []int32            // cluster-global initial task → owning node
	log       *eventLog
	sub       *ltc.Subscription
	closeOnce sync.Once
	mux       *http.ServeMux
}

// NewClusterServer wraps node's platform in the cluster HTTP surface.
// p must be nil exactly when the topology assigns the node no tiles (its
// split sub-instance is nil); such a node still serves — it redirects every
// check-in, reports trivially-done stats and an empty event stream — so a
// cluster boots uniformly regardless of how tasks landed on tiles.
func NewClusterServer(p *ltc.Platform, algo ltc.Algorithm, requestedShards int,
	topo *cluster.Topology, node int, split *cluster.Split) (*ClusterServer, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if node < 0 || node >= topo.Nodes {
		return nil, fmt.Errorf("httpapi: node %d outside topology [0,%d)", node, topo.Nodes)
	}
	if len(split.Subs) != topo.Nodes || len(split.OwnerOf) != topo.TotalTasks {
		return nil, errors.New("httpapi: split does not match the topology")
	}
	sub := split.Subs[node]
	if (sub == nil) != (p == nil) {
		return nil, fmt.Errorf("httpapi: node %d platform/sub-instance mismatch (owns tasks: %v, platform: %v)",
			node, sub != nil, p != nil)
	}
	s := &ClusterServer{
		topo: topo, node: node, p: p, algo: string(algo), requested: requestedShards,
		ownerOf: split.OwnerOf, localOf: make(map[int]ltc.TaskID),
		log: newEventLog(), mux: http.NewServeMux(),
	}
	if sub != nil {
		s.global = sub.Global
		for local, g := range sub.Global {
			s.localOf[int(g)] = ltc.TaskID(local)
		}
		// Record the node's whole event history from boot: the log is what
		// makes GET /events?since=N resumable. The platform's buses never
		// block publishers; if this subscriber is ever overrun the log has a
		// hole, so it is marked corrupt and streams terminate rather than
		// silently skipping — the cluster merger's gap detection stays honest.
		s.sub = p.Subscribe()
		go func() {
			for e := range s.sub.Events() {
				if s.sub.Dropped() > 0 {
					s.log.markCorrupt()
					return
				}
				s.log.append(s.wireEvent(e))
			}
		}()
	}
	s.mux.HandleFunc("POST /checkin", s.handleCheckIn)
	s.mux.HandleFunc("POST /checkin/batch", s.handleCheckInBatch)
	s.mux.HandleFunc("POST /tasks", s.handlePostTask)
	s.mux.HandleFunc("DELETE /tasks/{id}", s.handleRetireTask)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.HandleFunc("GET /cluster/info", s.handleInfo)
	return s, nil
}

// Handler returns the node's HTTP surface.
func (s *ClusterServer) Handler() http.Handler { return s.mux }

// Close detaches the event recorder from the platform. Open /events streams
// drain the recorded log and then block until their clients disconnect.
func (s *ClusterServer) Close() {
	s.closeOnce.Do(func() {
		if s.sub != nil {
			s.sub.Close()
		}
	})
}

// globalID translates a node-local task ID to its cluster-global ID:
// initial tasks by the split's table, posted tasks by the topology's
// disjoint per-node arithmetic progression (the k-th post on this node is
// local ID len(initial)+k — the platform numbers posts densely).
func (s *ClusterServer) globalID(local int) int {
	if local < len(s.global) {
		return int(s.global[local])
	}
	return s.topo.PostedGlobalID(s.node, local-len(s.global))
}

// wireEvent converts a platform event to its wire form with the task ID
// translated to cluster-global (tile_migrated frames carry Task -1, which
// passes through untouched). Seq stays the node-local dense sequence — the
// cluster merger folds per-node sequences, it never rewrites them.
func (s *ClusterServer) wireEvent(e ltc.Event) Event {
	we := FromEvent(e)
	if we.Task >= 0 {
		we.Task = s.globalID(we.Task)
	}
	return we
}

// wireReceipt converts a receipt with every grant's task ID translated.
func (s *ClusterServer) wireReceipt(r ltc.Receipt, bounced bool) Receipt {
	out := FromReceipt(r, bounced)
	for i := range out.Assignments {
		out.Assignments[i].Task = s.globalID(out.Assignments[i].Task)
	}
	return out
}

func (s *ClusterServer) handleCheckIn(w http.ResponseWriter, r *http.Request) {
	var body Worker
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad worker: %w", err))
		return
	}
	if owner := s.topo.NodeFor(geo.Point{X: body.X, Y: body.Y}); owner != s.node {
		writeRedirect(w, owner, -1,
			fmt.Sprintf("check-in at (%g, %g) belongs to node %d", body.X, body.Y, owner))
		return
	}
	// Owning a tile implies owning its tasks, so a consistent topology never
	// routes traffic to a platform-less node; reaching this with p == nil
	// means the served topology diverged from the split.
	if s.p == nil {
		writeError(w, http.StatusInternalServerError, errors.New("node owns the tile but has no platform"))
		return
	}
	rec, err := s.p.CheckIn(body.Model())
	switch {
	case errors.Is(err, ltc.ErrPlatformDone):
		writeJSON(w, http.StatusOK, s.wireReceipt(rec, true))
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, s.wireReceipt(rec, false))
	}
}

func (s *ClusterServer) handleCheckInBatch(w http.ResponseWriter, r *http.Request) {
	var body BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch: %w", err))
		return
	}
	// Ownership is all-or-nothing per batch: reject before ingesting anything
	// so a redirected batch is fully re-presentable after the client heals.
	for i, ww := range body.Workers {
		if owner := s.topo.NodeFor(geo.Point{X: ww.X, Y: ww.Y}); owner != s.node {
			writeRedirect(w, owner, i,
				fmt.Sprintf("batch worker %d (index %d) belongs to node %d", i, ww.Index, owner))
			return
		}
	}
	if s.p == nil {
		if len(body.Workers) == 0 {
			writeJSON(w, http.StatusOK, BatchResponse{Done: true})
			return
		}
		writeError(w, http.StatusInternalServerError, errors.New("node owns the tile but has no platform"))
		return
	}
	ws := make([]ltc.Worker, len(body.Workers))
	for i, ww := range body.Workers {
		ws[i] = ww.Model()
	}
	recs, err := s.p.CheckInBatch(ws)
	resp := BatchResponse{Done: errors.Is(err, ltc.ErrPlatformDone)}
	if err != nil && !resp.Done {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if n := len(recs); n > 0 && recs[n-1].Done {
		resp.Done = true
	}
	for _, rec := range recs {
		resp.Receipts = append(resp.Receipts, s.wireReceipt(rec, false))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *ClusterServer) handlePostTask(w http.ResponseWriter, r *http.Request) {
	var body TaskRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad task: %w", err))
		return
	}
	if owner := s.topo.NodeFor(geo.Point{X: body.X, Y: body.Y}); owner != s.node {
		writeRedirect(w, owner, -1,
			fmt.Sprintf("task at (%g, %g) belongs to node %d", body.X, body.Y, owner))
		return
	}
	if s.p == nil {
		writeError(w, http.StatusInternalServerError, errors.New("node owns the tile but has no platform"))
		return
	}
	var task ltc.Task
	task.Loc.X, task.Loc.Y = body.X, body.Y
	id, err := s.p.PostTask(task)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, TaskResponse{ID: s.globalID(int(id))})
}

func (s *ClusterServer) handleRetireTask(w http.ResponseWriter, r *http.Request) {
	g, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || g < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad task id %q", r.PathValue("id")))
		return
	}
	var owner int
	var local ltc.TaskID
	if g < s.topo.TotalTasks {
		owner = int(s.ownerOf[g])
		local = s.localOf[g] // valid iff owner == s.node
	} else {
		n, k, err := s.topo.PostedOwner(g)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		owner, local = n, ltc.TaskID(len(s.global)+k)
	}
	if owner != s.node {
		writeRedirect(w, owner, -1, fmt.Sprintf("task %d belongs to node %d", g, owner))
		return
	}
	// A posted ID can claim this node as owner without the node ever having
	// posted it; the platform's own range check turns that into a 404. A
	// platform-less node owns nothing retirable at all.
	if s.p == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown task %d", g))
		return
	}
	if err := s.p.RetireTask(local); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *ClusterServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := NodeStats{Node: s.node, ClusterNodes: s.topo.Nodes}
	if s.p == nil {
		// A node owning no tasks is trivially complete and perfectly even.
		st.Stats = Stats{Algo: s.algo, RequestedShards: s.requested, Done: true, Imbalance: 1}
	} else {
		st.Stats = statsSnapshot(s.p, s.algo, s.requested)
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *ClusterServer) handleInfo(w http.ResponseWriter, _ *http.Request) {
	info := ClusterInfo{
		Node: s.node, Nodes: s.topo.Nodes, TotalTasks: s.topo.TotalTasks,
		Fingerprint: s.topo.Fingerprint(), Tasks: make([]int, 0, len(s.global)),
	}
	for _, g := range s.global {
		info.Tasks = append(info.Tasks, int(g))
	}
	writeJSON(w, http.StatusOK, info)
}

// handleEvents streams the node's recorded event log as SSE, then follows
// the live feed. Unlike the plain gateway's subscribe-from-now stream, the
// cluster stream replays from the beginning (or from ?since=N, the per-node
// sequence number after which to resume), so a reconnecting cluster client
// can rebuild the global gapless sequence without losing its audit.
func (s *ClusterServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q: %w", v, err))
			return
		}
		since = n
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	ctx := r.Context()
	pos := int(since) // log[i] is the event with per-node Seq i+1
	for {
		e, wait, corrupt := s.log.at(pos)
		if corrupt {
			// The recorder was overrun: the log has a hole at the tail, so
			// the stream ends here rather than serving a gapped sequence.
			_, _ = fmt.Fprintf(w, ": event log truncated (recorder overrun)\n\n")
			return
		}
		if wait == nil {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Kind, data); err != nil {
				return
			}
			flusher.Flush()
			pos++
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-wait:
		}
	}
}

// eventLog is the node's append-only recorded event history backing
// resumable /events streams. Appends broadcast by closing notify.
type eventLog struct {
	mu      sync.Mutex
	events  []Event
	notify  chan struct{}
	corrupt bool
}

func newEventLog() *eventLog { return &eventLog{notify: make(chan struct{})} }

func (l *eventLog) append(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
}

func (l *eventLog) markCorrupt() {
	l.mu.Lock()
	l.corrupt = true
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
}

// at returns the event at pos, or — when the log hasn't grown that far — a
// channel that closes on the next append. corrupt is only reported once the
// readable prefix is exhausted, so clients always see every intact event.
func (l *eventLog) at(pos int) (e Event, wait chan struct{}, corrupt bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if pos < len(l.events) {
		return l.events[pos], nil, false
	}
	if l.corrupt {
		return Event{}, nil, true
	}
	return Event{}, l.notify, false
}
