package events

import (
	"errors"
	"testing"
)

func TestStreamMergerAssignsDenseClusterSeq(t *testing.T) {
	m := NewStreamMerger(3)
	// An arbitrary interleaving of three dense per-node streams.
	feed := []struct {
		node int
		seq  uint64
	}{
		{0, 1}, {1, 1}, {0, 2}, {2, 1}, {2, 2}, {1, 2}, {0, 3},
	}
	for i, f := range feed {
		got, err := m.Fold(f.node, f.seq)
		if err != nil {
			t.Fatalf("fold %d: %v", i, err)
		}
		if got != uint64(i+1) {
			t.Fatalf("fold %d: cluster seq %d, want %d (dense)", i, got, i+1)
		}
	}
	if m.Total() != uint64(len(feed)) {
		t.Fatalf("Total = %d, want %d", m.Total(), len(feed))
	}
	if m.Delivered(0) != 3 || m.Delivered(1) != 2 || m.Delivered(2) != 2 {
		t.Fatalf("resume points: %d/%d/%d", m.Delivered(0), m.Delivered(1), m.Delivered(2))
	}
}

func TestStreamMergerDetectsGapsAndDuplicates(t *testing.T) {
	m := NewStreamMerger(2)
	if _, err := m.Fold(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fold(0, 3); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap: got %v", err)
	}
	if _, err := m.Fold(0, 1); !errors.Is(err, ErrSeqDuplicate) {
		t.Fatalf("duplicate: got %v", err)
	}
	// A rejected fold must not consume a cluster sequence number or move
	// the node's resume point.
	if m.Total() != 1 || m.Delivered(0) != 1 {
		t.Fatalf("rejected folds mutated state: total %d, delivered %d", m.Total(), m.Delivered(0))
	}
	// The next in-order event folds normally.
	if seq, err := m.Fold(0, 2); err != nil || seq != 2 {
		t.Fatalf("post-rejection fold: (%d, %v)", seq, err)
	}
}

func TestStreamMergerBounds(t *testing.T) {
	m := NewStreamMerger(0) // raised to 1
	if _, err := m.Fold(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fold(1, 1); err == nil {
		t.Fatal("out-of-range node must fail")
	}
	if _, err := m.Fold(-1, 1); err == nil {
		t.Fatal("negative node must fail")
	}
	if m.Delivered(-1) != 0 || m.Delivered(99) != 0 {
		t.Fatal("out-of-range Delivered must report 0")
	}
}
