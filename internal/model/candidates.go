package model

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"ltc/internal/geo"
)

// Candidate is a task a given worker is eligible to perform, with its
// predicted accuracy and quality credit.
type Candidate struct {
	Task    TaskID
	Acc     float64
	AccStar float64
}

// CandidateIndex answers "which tasks may this worker perform?" — the inner
// loop of every LTC algorithm. When the instance's accuracy model bounds
// eligibility by distance (RadiusBounder), candidates come from a uniform
// grid over task locations; otherwise every task is checked.
//
// The index supports online task lifecycle: Insert adds a task's grid cells
// and Remove drops them, both incrementally (no full rebuild). Readers and
// writers may run concurrently: the query path is lock-free — Candidates
// loads an immutable snapshot with one atomic read and never blocks, even
// while Insert/Remove (serialized among themselves by a mutex) publish the
// next snapshot. Query scratch space comes from a pool, so the steady-state
// query path stays allocation-free.
type CandidateIndex struct {
	in     *Instance
	radius float64 // +Inf when the model gives no bound

	//ltc:lock index
	mu   sync.Mutex // serializes Insert/Remove
	snap atomic.Pointer[indexSnapshot]
}

// indexSnapshot is one immutable published state of the index: the dense
// task slice (retired tasks keep their slot), the liveness mask, and — when
// the eligibility radius is bounded — the cell grid. Writers share untouched
// cells between consecutive snapshots; only the task's own cell (and, for
// Remove, the liveness mask) is copied.
type indexSnapshot struct {
	tasks []Task //ltc:cow
	live  []bool //ltc:cow
	nLive int
	grid  *cellGrid // nil when the radius is unbounded
}

// cellGrid is the mutable-by-copy counterpart of geo.GridIndex: task ids
// bucketed into uniform cells over the initial bounding rect. Tasks posted
// outside the rect clamp into the border cells (queries clamp the same way,
// and the exact distance check filters, so correctness is unaffected).
type cellGrid struct {
	origin     geo.Point
	cellSize   float64
	cols, rows int
	cells      []cell //ltc:cow
}

// cell is one grid bucket in struct-of-arrays layout: ids[i] is the task at
// (xs[i], ys[i]). Keeping the coordinates beside the ids lets the radius
// filter of within sweep two contiguous float64 arrays instead of gathering
// Task structs through the dense task table — the hot loop of every
// candidate query touches only these slices.
type cell struct {
	ids []int32   //ltc:cow
	xs  []float64 //ltc:cow
	ys  []float64 //ltc:cow
}

// add returns the cell extended with one task, sharing the backing arrays
// with the receiver up to their current lengths (full slice expressions cap
// the shared views, so a concurrent reader of the previous snapshot never
// observes the appends).
func (c cell) add(id int32, p geo.Point) cell {
	n := len(c.ids)
	return cell{
		ids: append(c.ids[:n:n], id),
		xs:  append(c.xs[:n:n], p.X),
		ys:  append(c.ys[:n:n], p.Y),
	}
}

// without returns a fresh cell with task id filtered out. The slices are
// built as locals and only become cell fields on return, so every mutation
// of the //ltc:cow fields stays syntactically copy-on-write.
func (c cell) without(id int32) cell {
	n := len(c.ids) - 1
	ids := make([]int32, 0, n)
	xs := make([]float64, 0, n)
	ys := make([]float64, 0, n)
	for i, x := range c.ids {
		if x != id {
			ids = append(ids, x)
			xs = append(xs, c.xs[i])
			ys = append(ys, c.ys[i])
		}
	}
	return cell{ids: ids, xs: xs, ys: ys}
}

// idBufPool recycles the grid-query scratch buffers of Candidates. A pool
// (rather than a per-index buffer) keeps query state off the index, so a
// single index can be hammered from many goroutines.
var idBufPool = sync.Pool{New: func() any { return new([]int32) }}

// Lifecycle errors returned by Insert and Remove.
var (
	ErrTaskIDNotDense = errors.New("model: inserted task ID must extend the dense ID space")
	ErrUnknownTask    = errors.New("model: unknown task ID")
)

// NewCandidateIndex builds the candidate index for an instance. The initial
// task set is copied, so later Inserts never alias the instance's slice.
func NewCandidateIndex(in *Instance) *CandidateIndex {
	ci := &CandidateIndex{in: in, radius: math.Inf(1)}
	if rb, ok := in.Model.(RadiusBounder); ok {
		ci.radius = rb.EligibilityRadius(in.MinAcc)
	}
	// Fill the liveness mask before it becomes a snapshot field: snapshot
	// slices are copy-on-write once published, and building them as locals
	// keeps even the pre-publish stores out of the cow fields.
	live := make([]bool, len(in.Tasks))
	for i := range live {
		live[i] = true
	}
	snap := &indexSnapshot{
		tasks: append([]Task(nil), in.Tasks...),
		live:  live,
		nLive: len(in.Tasks),
	}
	if !math.IsInf(ci.radius, 1) {
		cell := ci.radius
		if cell <= 0 {
			cell = 1
		}
		snap.grid = newCellGrid(snap.tasks, cell)
	}
	ci.snap.Store(snap)
	return ci
}

// newCellGrid buckets the tasks into uniform cells of the given size over
// their bounding rect (mirroring geo.NewGridIndex's extent choice).
func newCellGrid(tasks []Task, cellSize float64) *cellGrid {
	g := &cellGrid{cellSize: cellSize, cols: 1, rows: 1}
	if len(tasks) > 0 {
		pts := make([]geo.Point, len(tasks))
		for i, t := range tasks {
			pts[i] = t.Loc
		}
		rect, _ := geo.BoundingRect(pts)
		g.origin = rect.Min
		g.cols = int(math.Floor(rect.Width()/cellSize)) + 1
		g.rows = int(math.Floor(rect.Height()/cellSize)) + 1
	}
	// Bucket into a local table first: cells is a //ltc:cow field, written
	// only by whole-field publication.
	cells := make([]cell, g.cols*g.rows)
	for i, t := range tasks {
		c := g.cellIndex(t.Loc)
		cells[c] = cells[c].add(int32(i), t.Loc)
	}
	g.cells = cells
	return g
}

func (g *cellGrid) cellIndex(p geo.Point) int {
	cx := int(math.Floor((p.X - g.origin.X) / g.cellSize))
	cy := int(math.Floor((p.Y - g.origin.Y) / g.cellSize))
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// withCell returns a copy of the grid whose outer cell table is fresh (so
// the previous snapshot keeps its view) but shares every cell's slices
// except the one at index c, which is replaced by nc.
func (g *cellGrid) withCell(c int, nc cell) *cellGrid {
	cells := make([]cell, len(g.cells))
	copy(cells, g.cells)
	cells[c] = nc
	return &cellGrid{
		origin:   g.origin,
		cellSize: g.cellSize,
		cols:     g.cols,
		rows:     g.rows,
		cells:    cells,
	}
}

// Radius returns the eligibility radius in effect (+Inf when unbounded).
func (ci *CandidateIndex) Radius() float64 { return ci.radius }

// NumTasks returns the size of the dense TaskID space: every id in
// [0, NumTasks) has been inserted at some point (retired ids included).
func (ci *CandidateIndex) NumTasks() int { return len(ci.snap.Load().tasks) }

// NumLive returns how many tasks are currently live (inserted, not removed).
func (ci *CandidateIndex) NumLive() int { return ci.snap.Load().nLive }

// Live reports whether the task id is known and not removed.
func (ci *CandidateIndex) Live(id TaskID) bool {
	s := ci.snap.Load()
	return id >= 0 && int(id) < len(s.live) && s.live[id]
}

// Insert adds a newly posted task to the index. The task's ID must extend
// the dense ID space (ID == NumTasks()) — the index is the ID authority's
// mirror, not an allocator. Safe to call concurrently with Candidates;
// Insert/Remove serialize among themselves.
func (ci *CandidateIndex) Insert(t Task) error {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	s := ci.snap.Load()
	if int(t.ID) != len(s.tasks) {
		return fmt.Errorf("%w: got %d, want %d", ErrTaskIDNotDense, t.ID, len(s.tasks))
	}
	ns := &indexSnapshot{
		// Appending at the dense frontier never rewrites an index a published
		// snapshot can reach, so sharing the backing array with the previous
		// snapshot is safe (writes land strictly beyond its length). The
		// bare appends are waived rather than rewritten: a capped
		// copy-append here would copy the whole table on every insert,
		// trading O(1) amortized growth for O(n) per post.
		tasks: append(s.tasks, t),   //ltclint:ignore cowsnapshot dense-frontier append writes strictly beyond every published snapshot's length
		live:  append(s.live, true), //ltclint:ignore cowsnapshot dense-frontier append writes strictly beyond every published snapshot's length
		nLive: s.nLive + 1,
		grid:  s.grid,
	}
	if s.grid != nil {
		c := s.grid.cellIndex(t.Loc)
		ns.grid = s.grid.withCell(c, s.grid.cells[c].add(int32(t.ID), t.Loc))
	}
	ci.snap.Store(ns)
	return nil
}

// Remove drops a task from the index: its grid cell no longer lists it and
// it stops appearing in Candidates. The id stays allocated (dense space
// never shrinks). Removing an unknown or already-removed id is an error.
func (ci *CandidateIndex) Remove(id TaskID) error {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	s := ci.snap.Load()
	if id < 0 || int(id) >= len(s.tasks) || !s.live[id] {
		return fmt.Errorf("%w: %d", ErrUnknownTask, id)
	}
	live := append([]bool(nil), s.live...)
	live[id] = false
	ns := &indexSnapshot{tasks: s.tasks, live: live, nLive: s.nLive - 1, grid: s.grid}
	if s.grid != nil {
		c := s.grid.cellIndex(s.tasks[id].Loc)
		ns.grid = s.grid.withCell(c, s.grid.cells[c].without(int32(id)))
	}
	ci.snap.Store(ns)
	return nil
}

// CandidateSource answers per-worker eligibility queries. It is the
// capability the online solvers draw candidates from: the live
// CandidateIndex (every query loads the latest snapshot) or a PinnedQuery
// (a whole run of queries shares one snapshot and one scratch buffer — the
// batched ingestion path).
type CandidateSource interface {
	Candidates(w Worker, dst []Candidate) []Candidate
}

// Candidates appends to dst every live task worker w is eligible for and
// returns the extended slice. Candidates are ordered by ascending TaskID.
// It is safe to call concurrently from multiple goroutines on one shared
// index, including while Insert/Remove run: each query sees one consistent
// snapshot.
func (ci *CandidateIndex) Candidates(w Worker, dst []Candidate) []Candidate {
	return ci.candidatesFrom(ci.snap.Load(), w, dst)
}

// candidatesFrom answers one query against a fixed snapshot. The bulk
// helpers (EligibleWorkerLists, MaxPossibleCredit, CheckFeasible) capture a
// single snapshot for their whole scan, so their task-indexed outputs stay
// in bounds even while Insert/Remove publish new snapshots concurrently.
func (ci *CandidateIndex) candidatesFrom(s *indexSnapshot, w Worker, dst []Candidate) []Candidate {
	if s.grid != nil {
		bufp := idBufPool.Get().(*[]int32)
		dst, *bufp = ci.scanGrid(s, w, dst, *bufp)
		idBufPool.Put(bufp)
		return dst
	}
	return ci.scanAll(s, w, dst)
}

// scanGrid collects the eligible candidates among the snapshot's grid hits,
// using (and returning) the caller's id scratch buffer. Grid results are
// grouped by cell; sorting by id keeps the output deterministic.
func (ci *CandidateIndex) scanGrid(s *indexSnapshot, w Worker, dst []Candidate, scratch []int32) ([]Candidate, []int32) {
	ids := s.grid.within(w.Loc, ci.radius, scratch[:0])
	sortInt32(ids)
	for _, id := range ids {
		t := s.tasks[id]
		if acc, ok := ci.in.Eligible(w, t); ok {
			dst = append(dst, Candidate{Task: t.ID, Acc: acc, AccStar: AccStar(acc)})
		}
	}
	return dst, ids
}

// scanAll is the unbounded-radius fallback: every live task is checked.
func (ci *CandidateIndex) scanAll(s *indexSnapshot, w Worker, dst []Candidate) []Candidate {
	for id, t := range s.tasks {
		if !s.live[id] {
			continue
		}
		if acc, ok := ci.in.Eligible(w, t); ok {
			dst = append(dst, Candidate{Task: t.ID, Acc: acc, AccStar: AccStar(acc)})
		}
	}
	return dst
}

// PinnedQuery answers Candidates against one pinned snapshot of its index,
// with a private scratch buffer: a run of queries pays a single atomic
// snapshot load (at Pin) and zero pool round-trips — the amortization the
// batched ingestion path is built on. Between Pin and Unpin the view is
// frozen: tasks inserted or removed on the index after the Pin are not
// seen. Unlike the index itself a PinnedQuery is NOT safe for concurrent
// use; callers serialize it with their own lock (the dispatch layer holds
// the owning shard's mutex for the whole run).
type PinnedQuery struct {
	ci   *CandidateIndex
	s    *indexSnapshot
	sbuf []int32
}

// NewPinnedQuery returns an unpinned query bound to the index. While
// unpinned, Candidates falls back to the index's live snapshot (still
// skipping the pool round-trip).
func (ci *CandidateIndex) NewPinnedQuery() *PinnedQuery {
	return &PinnedQuery{ci: ci}
}

// Pin captures the index's current snapshot for the queries that follow.
// Re-pinning refreshes the view.
func (p *PinnedQuery) Pin() { p.s = p.ci.snap.Load() }

// Unpin releases the pinned snapshot (so superseded snapshots can be
// collected between runs); queries fall back to the live view.
func (p *PinnedQuery) Unpin() { p.s = nil }

// Pinned reports whether a snapshot is currently pinned.
func (p *PinnedQuery) Pinned() bool { return p.s != nil }

// Candidates mirrors CandidateIndex.Candidates against the pinned snapshot
// (or the live one while unpinned), implementing CandidateSource.
func (p *PinnedQuery) Candidates(w Worker, dst []Candidate) []Candidate {
	s := p.s
	if s == nil {
		s = p.ci.snap.Load()
	}
	if s.grid != nil {
		dst, p.sbuf = p.ci.scanGrid(s, w, dst, p.sbuf)
		return dst
	}
	return p.ci.scanAll(s, w, dst)
}

// within appends the ids of all indexed tasks at Euclidean distance ≤ radius
// from q (mirroring geo.GridIndex.Within's cell walk). The filter reads each
// cell's xs/ys arrays directly — one contiguous sweep per cell, no gather
// through the task table.
func (g *cellGrid) within(q geo.Point, radius float64, dst []int32) []int32 {
	r2 := radius * radius
	// Clamp every bound into the cell range (not just toward it): tasks
	// posted outside the initial rect live clamped in the border cells, so a
	// query beyond the border must still scan its nearest border cells — the
	// exact distance check filters false positives.
	minCX := clampCell(int(math.Floor((q.X-radius-g.origin.X)/g.cellSize)), g.cols)
	maxCX := clampCell(int(math.Floor((q.X+radius-g.origin.X)/g.cellSize)), g.cols)
	minCY := clampCell(int(math.Floor((q.Y-radius-g.origin.Y)/g.cellSize)), g.rows)
	maxCY := clampCell(int(math.Floor((q.Y+radius-g.origin.Y)/g.cellSize)), g.rows)
	for cy := minCY; cy <= maxCY; cy++ {
		rowBase := cy * g.cols
		for cx := minCX; cx <= maxCX; cx++ {
			c := &g.cells[rowBase+cx]
			for i, id := range c.ids {
				dx, dy := c.xs[i]-q.X, c.ys[i]-q.Y
				if dx*dx+dy*dy <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// clampCell clamps a cell coordinate into [0, n).
func clampCell(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// EligibleWorkerLists returns, for every task (dense ID space, removed tasks
// get empty lists), the ascending arrival indices of all workers eligible
// for it. Offline algorithms (Base-off) use this to reason about future
// supply. Cost: one Candidates call per worker. The whole scan sees one
// snapshot of the task set.
func (ci *CandidateIndex) EligibleWorkerLists() [][]int32 {
	s := ci.snap.Load()
	lists := make([][]int32, len(s.tasks))
	var buf []Candidate
	for _, w := range ci.in.Workers {
		buf = ci.candidatesFrom(s, w, buf[:0])
		for _, c := range buf {
			lists[c.Task] = append(lists[c.Task], int32(w.Index))
		}
	}
	return lists
}

// MaxPossibleCredit returns, for every task (dense ID space, removed tasks
// get 0), the total Acc* credit available from all workers (each
// contributing at most once, ignoring capacity). A task whose total is
// below δ can never complete: used for feasibility checks. The whole scan
// sees one snapshot of the task set.
func (ci *CandidateIndex) MaxPossibleCredit() []float64 {
	return ci.maxPossibleCreditFrom(ci.snap.Load())
}

func (ci *CandidateIndex) maxPossibleCreditFrom(s *indexSnapshot) []float64 {
	total := make([]float64, len(s.tasks))
	var buf []Candidate
	for _, w := range ci.in.Workers {
		buf = ci.candidatesFrom(s, w, buf[:0])
		for _, c := range buf {
			total[c.Task] += c.AccStar
		}
	}
	return total
}

// CheckFeasible returns ErrInfeasible when some live task cannot reach δ
// even if every eligible worker performs it (capacity ignored — a necessary
// condition only, but it catches the common generator mistakes). The check
// sees one snapshot of the task set.
func (ci *CandidateIndex) CheckFeasible() error {
	s := ci.snap.Load()
	delta := ci.in.Delta()
	for id, total := range ci.maxPossibleCreditFrom(s) {
		if !s.live[id] {
			continue
		}
		if !Completed(total, delta) {
			return ErrInfeasible
		}
	}
	return nil
}

// sortInt32 sorts a small slice of int32 in place. Insertion sort for short
// slices (grid query results are typically tens of ids), falling back to a
// simple quicksort.
func sortInt32(s []int32) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	pivot := s[len(s)/2]
	lo, hi := 0, len(s)-1
	for lo <= hi {
		for s[lo] < pivot {
			lo++
		}
		for s[hi] > pivot {
			hi--
		}
		if lo <= hi {
			s[lo], s[hi] = s[hi], s[lo]
			lo++
			hi--
		}
	}
	sortInt32(s[:hi+1])
	sortInt32(s[lo:])
}
