// Package pqueue provides the priority-queue primitives used across the LTC
// implementation: a generic binary heap, a bounded top-K heap (the heap "Q"
// of Algorithms 1-3 in the paper) and an indexed min-heap keyed by node id
// for Dijkstra with decrease-key.
//
// All structures are allocation-conscious: they reuse backing slices and
// never allocate per operation beyond amortised slice growth.
package pqueue

// Heap is a generic binary heap. The less function defines the heap order:
// the element x for which less(x, y) holds for all other y is at the top.
// The zero value is not usable; construct with NewHeap.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len reports the number of elements currently in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push adds x to the heap in O(log n).
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Peek returns the top element without removing it. It panics on an empty
// heap; callers must check Len first.
func (h *Heap[T]) Peek() T {
	if len(h.items) == 0 {
		panic("pqueue: Peek on empty heap")
	}
	return h.items[0]
}

// Pop removes and returns the top element in O(log n). It panics on an
// empty heap; callers must check Len first.
func (h *Heap[T]) Pop() T {
	if len(h.items) == 0 {
		panic("pqueue: Pop on empty heap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release references for GC
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

// Reset empties the heap while keeping the backing slice for reuse.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			best = right
		}
		if !h.less(h.items[best], h.items[i]) {
			return
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}

// TopK keeps the k largest elements (by less, where less defines "smaller")
// seen so far. It is the heap Q of the paper's Algorithms 1-3: each worker
// scans the candidate tasks, offers each one to the heap, and the heap keeps
// only the best K under the worker's capacity.
//
// Internally it is a min-heap of at most k elements: the top is the weakest
// of the current best k, so an offer beating it replaces it in O(log k).
type TopK[T any] struct {
	h *Heap[T]
	k int
}

// NewTopK returns a collector for the k largest elements under less
// (less(a,b) means a ranks below b). k must be positive.
func NewTopK[T any](k int, less func(a, b T) bool) *TopK[T] {
	if k <= 0 {
		panic("pqueue: TopK requires k > 0")
	}
	return &TopK[T]{h: NewHeap(less), k: k}
}

// Offer proposes x. It returns true if x was retained among the current
// best k (possibly evicting the previous weakest element).
func (t *TopK[T]) Offer(x T) bool {
	if t.h.Len() < t.k {
		t.h.Push(x)
		return true
	}
	if t.h.less(t.h.Peek(), x) {
		t.h.Pop()
		t.h.Push(x)
		return true
	}
	return false
}

// Len reports how many elements are currently retained (≤ k).
func (t *TopK[T]) Len() int { return t.h.Len() }

// PopMin removes and returns the weakest retained element. Draining the
// collector with PopMin yields the retained elements in ascending order.
func (t *TopK[T]) PopMin() T { return t.h.Pop() }

// Drain empties the collector, appending the retained elements to dst in
// ascending order, and returns the extended slice.
func (t *TopK[T]) Drain(dst []T) []T {
	for t.h.Len() > 0 {
		dst = append(dst, t.h.Pop())
	}
	return dst
}

// Reset empties the collector while keeping its capacity k.
func (t *TopK[T]) Reset() { t.h.Reset() }

// IndexedMinHeap is a min-heap over node ids 0..n-1 with float64 priorities
// and decrease-key support, as required by Dijkstra's algorithm inside the
// min-cost-flow solver. Node ids must be unique within the heap.
type IndexedMinHeap struct {
	ids  []int32   // heap order -> node id
	pos  []int32   // node id -> heap position, -1 if absent
	prio []float64 // node id -> priority
}

// NewIndexedMinHeap returns an empty indexed heap for node ids < n.
func NewIndexedMinHeap(n int) *IndexedMinHeap {
	h := &IndexedMinHeap{
		ids:  make([]int32, 0, n),
		pos:  make([]int32, n),
		prio: make([]float64, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of queued node ids.
func (h *IndexedMinHeap) Len() int { return len(h.ids) }

// Contains reports whether node id is currently queued.
func (h *IndexedMinHeap) Contains(id int) bool { return h.pos[id] >= 0 }

// Priority returns the priority most recently set for id. Meaningful only
// if the id has been pushed since the last Reset.
func (h *IndexedMinHeap) Priority(id int) float64 { return h.prio[id] }

// PushOrDecrease inserts id with the given priority, or lowers its priority
// if it is already queued with a higher one. Returns false when id is queued
// with an equal or lower priority already (no-op).
func (h *IndexedMinHeap) PushOrDecrease(id int, priority float64) bool {
	if p := h.pos[id]; p >= 0 {
		if priority >= h.prio[id] {
			return false
		}
		h.prio[id] = priority
		h.up(int(p))
		return true
	}
	h.prio[id] = priority
	h.pos[id] = int32(len(h.ids))
	h.ids = append(h.ids, int32(id))
	h.up(len(h.ids) - 1)
	return true
}

// PopMin removes and returns the queued id with the smallest priority.
// It panics when empty.
func (h *IndexedMinHeap) PopMin() (id int, priority float64) {
	if len(h.ids) == 0 {
		panic("pqueue: PopMin on empty IndexedMinHeap")
	}
	top := h.ids[0]
	last := len(h.ids) - 1
	h.ids[0] = h.ids[last]
	h.pos[h.ids[0]] = 0
	h.ids = h.ids[:last]
	h.pos[top] = -1
	if last > 0 {
		h.down(0)
	}
	return int(top), h.prio[top]
}

// Reset empties the heap, retaining capacity. O(queued) — it only clears
// positions of ids still queued.
func (h *IndexedMinHeap) Reset() {
	for _, id := range h.ids {
		h.pos[id] = -1
	}
	h.ids = h.ids[:0]
}

func (h *IndexedMinHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[h.ids[i]] >= h.prio[h.ids[parent]] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedMinHeap) down(i int) {
	n := len(h.ids)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && h.prio[h.ids[right]] < h.prio[h.ids[left]] {
			best = right
		}
		if h.prio[h.ids[best]] >= h.prio[h.ids[i]] {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *IndexedMinHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}
