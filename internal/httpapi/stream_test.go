package httpapi

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestStreamEventsConvenience drives the callback wrapper over a real run:
// events arrive in order and ErrStopStreaming ends the stream cleanly.
func TestStreamEventsConvenience(t *testing.T) {
	in, client, shutdown := newGateway(t, 0.01, 5, 1)
	defer shutdown()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	observed := make(chan struct{})
	var once sync.Once
	finished := make(chan error, 1)
	var completions int
	go func() {
		finished <- client.StreamEvents(ctx, func(e Event) error {
			once.Do(func() { close(observed) })
			switch e.Kind {
			case "task_completed":
				completions++
			case "platform_done":
				return ErrStopStreaming
			}
			return nil
		})
	}()
	// StreamEvents gives no readiness signal (unlike OpenEvents), so ping
	// with post/retire pairs until the subscriber observes one — the
	// retired extras never block completion.
	for {
		id, err := client.PostTask(in.Tasks[0].Loc.X, in.Tasks[0].Loc.Y)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.RetireTask(id); err != nil {
			t.Fatal(err)
		}
		select {
		case <-observed:
		case <-time.After(10 * time.Millisecond):
			continue
		}
		break
	}
	for _, w := range in.Workers {
		rec, err := client.CheckIn(FromWorker(w))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Done {
			break
		}
	}
	if err := <-finished; err != nil {
		t.Fatal(err)
	}
	if completions != len(in.Tasks) {
		t.Fatalf("%d completions observed, want %d", completions, len(in.Tasks))
	}

	// A bad path value on DELETE /tasks is a 400, not a retire attempt.
	resp, err := client.client().Get(client.Base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	req, err := http.NewRequest(http.MethodDelete, client.Base+"/tasks/notanumber", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := client.client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = dresp.Body.Close()
	if dresp.StatusCode != 400 {
		t.Fatalf("bad retire id: HTTP %d", dresp.StatusCode)
	}
}

// TestStreamEventsCancellation: cancelling the context ends StreamEvents
// without error even while blocked on an idle stream.
func TestStreamEventsCancellation(t *testing.T) {
	_, client, shutdown := newGateway(t, 0.01, 5, 1)
	defer shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- client.StreamEvents(ctx, func(Event) error { return nil })
	}()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("cancelled stream err = %v", err)
	}
	// OpenEvents against a dead server fails cleanly.
	bad := &Client{Base: "http://127.0.0.1:1"}
	if _, err := bad.OpenEvents(context.Background()); err == nil {
		t.Fatal("OpenEvents against nothing succeeded")
	}
	if _, err := bad.Stats(); err == nil {
		t.Fatal("Stats against nothing succeeded")
	}
}
