package model

import (
	"math"
	"sync"

	"ltc/internal/geo"
)

// Candidate is a task a given worker is eligible to perform, with its
// predicted accuracy and quality credit.
type Candidate struct {
	Task    TaskID
	Acc     float64
	AccStar float64
}

// CandidateIndex answers "which tasks may this worker perform?" — the inner
// loop of every LTC algorithm. When the instance's accuracy model bounds
// eligibility by distance (RadiusBounder), candidates come from a uniform
// grid over task locations; otherwise every task is checked.
//
// The index is read-only after construction and safe for concurrent use:
// one index can serve Candidates queries from many goroutines at once
// (callers still own their dst buffers). Query scratch space comes from a
// pool, so the steady-state query path stays allocation-free.
type CandidateIndex struct {
	in     *Instance
	grid   *geo.GridIndex
	radius float64 // +Inf when the model gives no bound
}

// idBufPool recycles the grid-query scratch buffers of Candidates. A pool
// (rather than a per-index buffer) keeps CandidateIndex itself immutable, so
// a single index can be hammered from many goroutines.
var idBufPool = sync.Pool{New: func() any { return new([]int32) }}

// NewCandidateIndex builds the candidate index for an instance.
func NewCandidateIndex(in *Instance) *CandidateIndex {
	ci := &CandidateIndex{in: in, radius: math.Inf(1)}
	if rb, ok := in.Model.(RadiusBounder); ok {
		ci.radius = rb.EligibilityRadius(in.MinAcc)
	}
	if !math.IsInf(ci.radius, 1) {
		pts := make([]geo.Point, len(in.Tasks))
		for i, t := range in.Tasks {
			pts[i] = t.Loc
		}
		cell := ci.radius
		if cell <= 0 {
			cell = 1
		}
		ci.grid = geo.NewGridIndex(pts, cell)
	}
	return ci
}

// Radius returns the eligibility radius in effect (+Inf when unbounded).
func (ci *CandidateIndex) Radius() float64 { return ci.radius }

// Candidates appends to dst every task worker w is eligible for and returns
// the extended slice. Candidates are ordered by ascending TaskID. It is safe
// to call concurrently from multiple goroutines on one shared index.
func (ci *CandidateIndex) Candidates(w Worker, dst []Candidate) []Candidate {
	if ci.grid != nil {
		bufp := idBufPool.Get().(*[]int32)
		ids := ci.grid.Within(w.Loc, ci.radius, (*bufp)[:0])
		// Grid results are grouped by cell; sort by id for determinism.
		sortInt32(ids)
		for _, id := range ids {
			t := ci.in.Tasks[id]
			if acc, ok := ci.in.Eligible(w, t); ok {
				dst = append(dst, Candidate{Task: t.ID, Acc: acc, AccStar: AccStar(acc)})
			}
		}
		*bufp = ids
		idBufPool.Put(bufp)
		return dst
	}
	for _, t := range ci.in.Tasks {
		if acc, ok := ci.in.Eligible(w, t); ok {
			dst = append(dst, Candidate{Task: t.ID, Acc: acc, AccStar: AccStar(acc)})
		}
	}
	return dst
}

// EligibleWorkerLists returns, for every task, the ascending arrival indices
// of all workers eligible for it. Offline algorithms (Base-off) use this to
// reason about future supply. Cost: one Candidates call per worker.
func (ci *CandidateIndex) EligibleWorkerLists() [][]int32 {
	lists := make([][]int32, len(ci.in.Tasks))
	var buf []Candidate
	for _, w := range ci.in.Workers {
		buf = ci.Candidates(w, buf[:0])
		for _, c := range buf {
			lists[c.Task] = append(lists[c.Task], int32(w.Index))
		}
	}
	return lists
}

// MaxPossibleCredit returns, for every task, the total Acc* credit available
// from all workers (each contributing at most once, ignoring capacity). A
// task whose total is below δ can never complete: used for feasibility
// checks.
func (ci *CandidateIndex) MaxPossibleCredit() []float64 {
	total := make([]float64, len(ci.in.Tasks))
	var buf []Candidate
	for _, w := range ci.in.Workers {
		buf = ci.Candidates(w, buf[:0])
		for _, c := range buf {
			total[c.Task] += c.AccStar
		}
	}
	return total
}

// CheckFeasible returns ErrInfeasible when some task cannot reach δ even if
// every eligible worker performs it (capacity ignored — a necessary
// condition only, but it catches the common generator mistakes).
func (ci *CandidateIndex) CheckFeasible() error {
	delta := ci.in.Delta()
	for _, total := range ci.MaxPossibleCredit() {
		if !Completed(total, delta) {
			return ErrInfeasible
		}
	}
	return nil
}

// sortInt32 sorts a small slice of int32 in place. Insertion sort for short
// slices (grid query results are typically tens of ids), falling back to a
// simple quicksort.
func sortInt32(s []int32) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	pivot := s[len(s)/2]
	lo, hi := 0, len(s)-1
	for lo <= hi {
		for s[lo] < pivot {
			lo++
		}
		for s[hi] > pivot {
			hi--
		}
		if lo <= hi {
			s[lo], s[hi] = s[hi], s[lo]
			lo++
			hi--
		}
	}
	sortInt32(s[:hi+1])
	sortInt32(s[lo:])
}
