// Package fixture exercises the noalloc analyzer: hot-path functions are
// annotated //ltc:noalloc and every heap-escaping construct is flagged.
package fixture

import "fmt"

type thing struct {
	buf   []int //ltc:arena
	other []int
	m     map[string]int
}

// hot is clean: arena-field and parameter-rooted appends are the two
// blessed destinations.
//
//ltc:noalloc
func (t *thing) hot(xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	t.buf = append(t.buf, sum)
	xs = append(xs, sum)
	_ = xs
	return sum
}

//ltc:noalloc
func (t *thing) builtins(n int) {
	s := make([]int, n) // want "make allocates"
	_ = s
	p := new(int) // want "new allocates"
	_ = p
	t.other = append(t.other, n) // want "append into non-arena"
}

//ltc:noalloc
func (t *thing) calls(n int) {
	_ = fmt.Sprintf("%d", n) // want "call to fmt.Sprintf allocates" "passing .* as interface"
	t.m["k"] = n             // want "map write may allocate"
}

//ltc:noalloc
func (t *thing) escapes() {
	f := func() {} // want "function literal allocates"
	f()
	go t.hot(nil) // want "go statement allocates"
	g := t.calls  // want "method value .* allocates"
	_ = g
	xs := []int{1, 2} // want "slice literal allocates"
	_ = xs
	p := &thing{} // want "composite literal escapes"
	_ = p
}

//ltc:noalloc
func (t *thing) boxes(n int) any {
	var i any = n // want "assigning int to interface"
	_ = i
	return n // want "returning int as interface"
}

// boxesPointer is clean: pointer-shaped values fit an interface word
// without boxing.
//
//ltc:noalloc
func (t *thing) boxesPointer() any {
	return t
}

//ltc:noalloc
func (t *thing) conv(s string) []byte {
	return []byte(s) // want "conversion between string and byte/rune slice"
}

// waived demonstrates a reasoned waiver suppressing the diagnostic: the
// fixture line produces a finding but the waiver eats it.
//
//ltc:noalloc
func (t *thing) waived(n int) {
	_ = make([]int, n) //ltclint:ignore noalloc fixture demonstrates an amortized-refill waiver
}

// cold is unannotated: allocations are nobody's business here.
func (t *thing) cold(n int) []int {
	return make([]int, n)
}
