package stats

import (
	"math"
	"testing"
)

func TestZipfProbabilities(t *testing.T) {
	z := NewZipf(5, 1.0)
	sum := 0.0
	for k := 0; k < 5; k++ {
		sum += z.P(k)
		if k > 0 && z.P(k) >= z.P(k-1) {
			t.Fatalf("P(%d)=%v not below P(%d)=%v", k, z.P(k), k-1, z.P(k-1))
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v, want 1", sum)
	}
	// Harmonic weights: P(0) = 1/H_5 = 1/(1+1/2+1/3+1/4+1/5).
	want := 1 / (1 + 0.5 + 1.0/3 + 0.25 + 0.2)
	if math.Abs(z.P(0)-want) > 1e-12 {
		t.Fatalf("P(0)=%v, want %v", z.P(0), want)
	}
}

func TestZipfSampleMatchesDistribution(t *testing.T) {
	const n, draws = 16, 200000
	z := NewZipf(n, 1.2)
	rng := NewRand(7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Sample(rng)]++
	}
	for k := 0; k < n; k++ {
		got := float64(counts[k]) / draws
		if math.Abs(got-z.P(k)) > 0.01 {
			t.Fatalf("rank %d: empirical %v vs expected %v", k, got, z.P(k))
		}
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	z := NewZipf(4, 0)
	for k := 0; k < 4; k++ {
		if math.Abs(z.P(k)-0.25) > 1e-12 {
			t.Fatalf("P(%d)=%v, want 0.25", k, z.P(k))
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(64, 1.1)
	a, b := NewRand(3), NewRand(3)
	for i := 0; i < 1000; i++ {
		if x, y := z.Sample(a), z.Sample(b); x != y {
			t.Fatalf("draw %d: %d != %d from equal seeds", i, x, y)
		}
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {4, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}
