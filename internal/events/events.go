// Package events is the platform's publish/subscribe layer: the dispatch
// layer publishes task-lifecycle events (posted, retired, completed,
// platform-done) into a Bus, and any number of subscribers consume them
// through bounded buffered channels. The bus never blocks a publisher — a
// subscriber that falls behind loses events (counted per subscription)
// instead of stalling the check-in hot path. See CONCURRENCY.md ("Event
// subscriptions") for the ordering and drop contract.
package events

import (
	"sync"
	"sync/atomic"

	"ltc/internal/model"
)

// Kind discriminates platform events.
type Kind uint8

// The platform event kinds.
const (
	// TaskPosted fires when PostTask adds a task mid-stream. Task is the
	// new global TaskID, PostIndex its arrival-clock anchor.
	TaskPosted Kind = iota + 1
	// TaskRetired fires the first time a task is retired (including
	// harmless retires of already-completed tasks, which still mark the
	// task retired in TaskStatuses).
	TaskRetired
	// TaskCompleted fires when a task's accumulated credit reaches δ.
	// Worker is the global index of the worker whose assignment completed
	// it — the task's absolute latency. Every task completes at most once,
	// so a subscriber that keeps up sees exactly one TaskCompleted per
	// completed task.
	TaskCompleted
	// PlatformDone fires when the count of open tasks reaches zero. A
	// later PostTask can revive the platform, so PlatformDone may fire
	// again after further completions or retires.
	PlatformDone
	// TileMigrated fires after the rebalancer hands a tile (and its tasks)
	// from one shard to another: Tile is the migrated task tile, FromShard
	// and ToShard the old and new owners. Published after the routing swap
	// is visible, so a subscriber that folds migration events always trails
	// the table, never leads it.
	TileMigrated
)

// String returns the kind's wire name, as served by the ltcd gateway.
func (k Kind) String() string {
	switch k {
	case TaskPosted:
		return "task_posted"
	case TaskRetired:
		return "task_retired"
	case TaskCompleted:
		return "task_completed"
	case PlatformDone:
		return "platform_done"
	case TileMigrated:
		return "tile_migrated"
	}
	return "unknown"
}

// Event is one platform event. Seq is the bus-wide publication sequence
// number (starting at 1, no gaps), identical across subscribers — two
// subscribers that both receive an event agree on its Seq, and a gap in
// the received sequence means the subscription dropped events in between.
type Event struct {
	Seq  uint64
	Kind Kind
	// Task is the subject task's global ID (-1 for PlatformDone).
	Task model.TaskID
	// Worker is the completing worker's global arrival index
	// (TaskCompleted only, 0 otherwise).
	Worker int
	// PostIndex is the arrival clock at post time (TaskPosted only).
	PostIndex int
	// Tile, FromShard and ToShard describe a migration (TileMigrated only,
	// 0 otherwise — use Kind to discriminate).
	Tile      int
	FromShard int
	ToShard   int
}

// Bus fans published events out to subscribers. The zero value is not
// ready; use NewBus. All methods are safe for concurrent use.
type Bus struct {
	// active mirrors len(subs) so Publish can bail without locking while
	// nobody listens — the common case on the check-in hot path.
	active atomic.Int64
	// The bus lock is a leaf of the dispatch lock order: Publish must never
	// be called with a dispatch mutex held (see CONCURRENCY.md).
	//ltc:lock leaf
	mu   sync.Mutex
	seq  uint64
	subs map[*Subscription]struct{}
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[*Subscription]struct{})}
}

// Active reports whether the bus currently has any subscribers. Publishing
// to an inactive bus is a single atomic load.
func (b *Bus) Active() bool { return b.active.Load() > 0 }

// Publish assigns the event its sequence number and offers it to every
// subscriber. It never blocks: a subscriber whose buffer is full loses the
// event, and its Dropped counter advances instead.
func (b *Bus) Publish(e Event) {
	if !b.Active() {
		return
	}
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	for s := range b.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a new subscriber with a buffer of the given capacity
// (values < 1 are raised to 1). Events published before Subscribe returns
// are not delivered.
func (b *Bus) Subscribe(buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{bus: b, ch: make(chan Event, buf)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.active.Store(int64(len(b.subs)))
	b.mu.Unlock()
	return s
}

// Subscription is one subscriber's bounded event feed.
type Subscription struct {
	bus     *Bus
	ch      chan Event
	dropped atomic.Uint64
	closed  bool // guarded by bus.mu
}

// Events returns the receive side of the subscription. The channel is
// closed by Close; events already buffered remain readable after it.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports how many events were lost because the subscription's
// buffer was full at publish time.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription from the bus and closes its channel.
// Safe to call more than once; buffered events stay readable.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	if !s.closed {
		s.closed = true
		delete(s.bus.subs, s)
		s.bus.active.Store(int64(len(s.bus.subs)))
		close(s.ch)
	}
	s.bus.mu.Unlock()
}
