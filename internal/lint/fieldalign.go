package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"ltc/internal/lint/analysis"
)

// FieldAlign reports //ltc:hot structs whose declared field order wastes
// padding. Hot structs sit on the check-in fast path (grants, outcomes,
// per-shard state), where every byte multiplies across millions of events;
// the analyzer compares the declared size against the best size achievable
// by reordering fields (largest alignment, then largest size first) and
// suggests that order. It checks only annotated structs, so incidental
// layout choices elsewhere stay free.
var FieldAlign = &analysis.Analyzer{
	Name: "fieldalign",
	Doc:  "flag //ltc:hot structs with padding-wasting field order",
	Run:  runFieldAlign,
}

func runFieldAlign(pass *analysis.Pass) error {
	anns := annotationsFor(pass)
	if len(anns.Hot) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Defs[ts.Name]
			if obj == nil || !anns.Hot[obj] {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				pass.Reportf(ts.Pos(), "//ltc:hot annotates non-struct type %s", ts.Name.Name)
				return true
			}
			checkHotStruct(pass, ts, st)
			return true
		})
	}
	return nil
}

func checkHotStruct(pass *analysis.Pass, ts *ast.TypeSpec, st *types.Struct) {
	sizes := pass.Sizes
	if sizes == nil || st.NumFields() < 2 {
		return
	}
	cur := sizes.Sizeof(st)

	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	best := append([]*types.Var(nil), fields...)
	sort.SliceStable(best, func(i, j int) bool {
		ai, aj := sizes.Alignof(best[i].Type()), sizes.Alignof(best[j].Type())
		if ai != aj {
			return ai > aj
		}
		return sizes.Sizeof(best[i].Type()) > sizes.Sizeof(best[j].Type())
	})
	opt := sizes.Sizeof(types.NewStruct(best, nil))
	if opt >= cur {
		return
	}
	var order []string
	for _, f := range best {
		order = append(order, f.Name())
	}
	pass.Reportf(ts.Pos(),
		"hot struct %s is %d bytes; reordering fields to {%s} shrinks it to %d bytes",
		ts.Name.Name, cur, strings.Join(order, ", "), opt)
}
