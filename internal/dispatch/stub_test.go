package dispatch

import (
	"errors"
	"testing"

	"ltc/internal/core"
	"ltc/internal/model"
)

// staticSolver is an Online solver without TaskLifecycle support — the
// probe for the dispatcher's lifecycle-capability error paths.
type staticSolver struct{}

func (s *staticSolver) Name() string                       { return "static-stub" }
func (s *staticSolver) Arrive(model.Worker) []model.TaskID { return nil }
func (s *staticSolver) Done() bool                         { return false }

// TestDispatcherRejectsLifecycleOnStaticSolver: posting or retiring against
// a solver that cannot handle dynamic tasks must fail cleanly (check-ins
// keep working).
func TestDispatcherRejectsLifecycleOnStaticSolver(t *testing.T) {
	in := lifecycleInstance(8, 10, 60, 41)
	d, err := New(in, 2, func(in *model.Instance, ci *model.CandidateIndex) core.Online {
		return &staticSolver{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PostTask(model.Task{Loc: in.Tasks[0].Loc}); !errors.Is(err, core.ErrNoLifecycle) {
		t.Fatalf("PostTask err = %v, want ErrNoLifecycle", err)
	}
	// The failed post must roll back fully: the next attempt fails with the
	// same honest error, not a dense-ID desync.
	if _, err := d.PostTask(model.Task{Loc: in.Tasks[0].Loc}); !errors.Is(err, core.ErrNoLifecycle) {
		t.Fatalf("second PostTask err = %v, want ErrNoLifecycle", err)
	}
	if err := d.RetireTask(0); !errors.Is(err, core.ErrNoLifecycle) {
		t.Fatalf("RetireTask err = %v, want ErrNoLifecycle", err)
	}
	if _, err := d.CheckIn(in.Workers[0]); err != nil {
		t.Fatalf("CheckIn after failed lifecycle ops: %v", err)
	}
}
